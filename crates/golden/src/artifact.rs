//! The typed result model of the regeneration harness.
//!
//! An [`Artifact`] is a table with named, unit-annotated columns: the
//! canonical in-memory form of one reproduced paper artifact.  The CSV text
//! the `figures` binary prints and the `--json` machine-readable dump are
//! both *renderings* of this structure; the fidelity diff engine
//! ([`crate::diff`]) consumes it directly at full `f64` precision, so
//! display rounding never affects a verdict.

use serde::Serialize;

/// One column of an artifact table.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Column {
    /// Column name as printed in the CSV header.
    pub name: String,
    /// Physical unit of the values, if any (e.g. `"byte/it"`, `"%"`).
    pub unit: Option<String>,
    /// Decimal places used by the CSV rendering of [`Cell::Num`] values.
    /// `None` for integer/text columns.
    pub precision: Option<usize>,
}

/// One cell of an artifact table.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Cell {
    /// Exact integer quantity (counts, byte bounds, rank numbers).
    Int(i64),
    /// Measured/modelled floating-point quantity.
    Num(f64),
    /// Label (loop names, function names, on/off switches).
    Text(String),
    /// No value (e.g. a sweep that was not run for this configuration).
    Empty,
}

impl Cell {
    /// Numeric view of the cell, if it has one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Cell::Int(i) => Some(*i as f64),
            Cell::Num(x) => Some(*x),
            Cell::Text(_) | Cell::Empty => None,
        }
    }

    /// Text view of the cell, if it is a label.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Cell::Text(t) => Some(t),
            _ => None,
        }
    }
}

impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as i64)
    }
}

impl From<u32> for Cell {
    fn from(v: u32) -> Self {
        Cell::Int(v as i64)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v)
    }
}

impl From<&str> for Cell {
    fn from(v: &str) -> Self {
        Cell::Text(v.to_string())
    }
}

impl From<String> for Cell {
    fn from(v: String) -> Self {
        Cell::Text(v)
    }
}

/// A typed experiment result: one reproduced paper artifact.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Artifact {
    /// Experiment identifier (`"fig5"`, `"table1"`, …).
    pub id: String,
    /// Human-readable description of what the artifact reproduces.
    pub title: String,
    /// Column descriptors; every row has exactly this many cells.
    pub columns: Vec<Column>,
    /// Data rows.
    pub rows: Vec<Vec<Cell>>,
    /// Free-form annotations rendered as trailing `# …` comment lines
    /// (e.g. Fig. 7's improvement summary).
    pub notes: Vec<String>,
}

impl Artifact {
    /// Start an artifact with no columns or rows.
    pub fn new(id: &str, title: &str) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            columns: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Add an integer/text column (no decimal formatting).
    pub fn column(mut self, name: &str, unit: Option<&str>) -> Self {
        self.columns.push(Column {
            name: name.to_string(),
            unit: unit.map(str::to_string),
            precision: None,
        });
        self
    }

    /// Add a floating-point column rendered with `precision` decimals.
    pub fn num_column(mut self, name: &str, unit: Option<&str>, precision: usize) -> Self {
        self.columns.push(Column {
            name: name.to_string(),
            unit: unit.map(str::to_string),
            precision: Some(precision),
        });
        self
    }

    /// Append a data row.
    ///
    /// # Panics
    /// Panics if the row arity does not match the column count.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "artifact {}: row has {} cells, expected {}",
            self.id,
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Append a trailing annotation line.
    pub fn push_note(&mut self, note: String) {
        self.notes.push(note);
    }

    /// Index of the column called `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Scale every [`Cell::Num`] value by `factor`.  Used to validate the
    /// fidelity harness: a perturbed artifact must fail its golden check.
    pub fn perturb(&mut self, factor: f64) {
        for row in &mut self.rows {
            for cell in row {
                if let Cell::Num(x) = cell {
                    *x *= factor;
                }
            }
        }
    }

    /// Render the artifact as the CSV-like text the `figures` binary prints:
    /// a header line of column names, one comma-separated line per row, and
    /// the notes as trailing `# …` comments.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let header: Vec<&str> = self.columns.iter().map(|c| c.name.as_str()).collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&self.columns)
                .map(|(cell, col)| match cell {
                    Cell::Int(i) => i.to_string(),
                    Cell::Num(x) => format!("{:.*}", col.precision.unwrap_or(3), x),
                    Cell::Text(t) => t.clone(),
                    Cell::Empty => String::new(),
                })
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("# {note}\n"));
        }
        out
    }

    /// Render the artifact as a self-contained JSON object with full
    /// `f64` precision (non-finite numbers become `null`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"id\":{},\"title\":{},\"columns\":[",
            json_string(&self.id),
            json_string(&self.title)
        ));
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"unit\":{},\"precision\":{}}}",
                json_string(&c.name),
                c.unit.as_deref().map_or("null".into(), json_string),
                c.precision.map_or("null".to_string(), |p| p.to_string())
            ));
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match cell {
                    Cell::Int(v) => out.push_str(&v.to_string()),
                    Cell::Num(x) => out.push_str(&json_number(*x)),
                    Cell::Text(t) => out.push_str(&json_string(t)),
                    Cell::Empty => out.push_str("null"),
                }
            }
            out.push(']');
        }
        out.push_str("],\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(n));
        }
        out.push_str("]}");
        out
    }
}

/// JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal; non-finite values become `null`.
fn json_number(x: f64) -> String {
    if x.is_finite() {
        // Rust's `Display` for f64 is shortest-roundtrip and always contains
        // a digit, which is valid JSON.
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        let mut a = Artifact::new("figx", "sample artifact")
            .column("name", None)
            .column("cores", None)
            .num_column("ratio", Some("byte/byte"), 3);
        a.push_row(vec!["st1".into(), 4usize.into(), 1.25f64.into()]);
        a.push_row(vec!["st2".into(), 8usize.into(), Cell::Empty]);
        a.push_note("a note".to_string());
        a
    }

    #[test]
    fn csv_rendering_matches_layout() {
        let csv = sample().to_csv();
        assert_eq!(csv, "name,cores,ratio\nst1,4,1.250\nst2,8,\n# a note\n");
    }

    #[test]
    fn json_rendering_is_wellformed() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"id\":\"figx\""));
        assert!(json.contains("\"unit\":\"byte/byte\""));
        assert!(json.contains("[\"st1\",4,1.25]"));
        assert!(json.contains("null"));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(1.5), "1.5");
    }

    #[test]
    fn perturb_scales_only_num_cells() {
        let mut a = sample();
        a.perturb(2.0);
        assert_eq!(a.rows[0][2], Cell::Num(2.5));
        assert_eq!(a.rows[0][1], Cell::Int(4));
        assert_eq!(a.rows[0][0], Cell::Text("st1".into()));
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn arity_mismatch_panics() {
        let mut a = sample();
        a.push_row(vec![1.0f64.into()]);
    }

    #[test]
    fn cell_views() {
        assert_eq!(Cell::Int(3).as_f64(), Some(3.0));
        assert_eq!(Cell::Num(1.5).as_f64(), Some(1.5));
        assert_eq!(Cell::Text("x".into()).as_f64(), None);
        assert_eq!(Cell::Empty.as_f64(), None);
        assert_eq!(Cell::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Cell::Int(3).as_text(), None);
    }

    #[test]
    fn column_index_lookup() {
        let a = sample();
        assert_eq!(a.column_index("ratio"), Some(2));
        assert_eq!(a.column_index("missing"), None);
    }
}
