//! Criterion benches of the native kernels: the hydro mini-app step and the
//! store/copy microbenchmarks with and without non-temporal stores.  These
//! run on the host CPU, so the NT-store effect is real on x86-64.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use clover_leaf::{SimConfig, Simulation};
use clover_machine::icelake_sp_8360y;
use clover_ubench::copy::{copy_halo_ratio, CopyHaloPoint};

/// One full timestep of the hydro mini-app on a small grid.
fn hydro_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("cloverleaf_step");
    g.sample_size(10);
    for grid in [64usize, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(grid), &grid, |b, &grid| {
            let config = SimConfig::small(grid, 1);
            let mut sim = Simulation::new(&config, 0, 1);
            b.iter(|| sim.step(None));
        });
    }
    g.finish();
}

/// Native store kernel: plain vs. non-temporal stores (Fig. 5's native
/// counterpart).
fn native_store(c: &mut Criterion) {
    let n = 4 << 20; // 32 MiB per array: larger than L3 share, memory bound.
    let mut buf = vec![0.0f64; n];
    let mut g = c.benchmark_group("native_store");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.bench_function("plain", |b| {
        b.iter(|| clover_ubench::native::store_plain(&mut buf, 1.0))
    });
    g.bench_function("nontemporal", |b| {
        b.iter(|| clover_ubench::native::store_nontemporal(&mut buf, 2.0))
    });
    g.finish();
}

/// Native copy-with-halo kernel for the Fig. 8 inner dimensions.
fn native_copy_halo(c: &mut Criterion) {
    let rows = 2048usize;
    let mut g = c.benchmark_group("native_copy_halo");
    g.sample_size(10);
    for inner in [216usize, 1920] {
        let stride = inner + 5;
        let src = vec![1.0f64; rows * stride];
        let mut dst = vec![0.0f64; rows * stride];
        g.throughput(Throughput::Bytes((rows * inner * 8) as u64));
        g.bench_with_input(BenchmarkId::new("plain", inner), &inner, |b, &inner| {
            b.iter(|| clover_ubench::native::copy_with_halo(&mut dst, &src, inner, 5, rows, false))
        });
        g.bench_with_input(
            BenchmarkId::new("nontemporal", inner),
            &inner,
            |b, &inner| {
                b.iter(|| {
                    clover_ubench::native::copy_with_halo(&mut dst, &src, inner, 5, rows, true)
                })
            },
        );
    }
    g.finish();
}

/// Ablation: the simulated Fig. 8 point for reference alongside the native
/// numbers (kept tiny so `cargo bench` stays quick).
fn simulated_copy_halo_reference(c: &mut Criterion) {
    let machine = icelake_sp_8360y();
    let mut g = c.benchmark_group("simulated_copy_halo_reference");
    g.sample_size(10);
    g.bench_function("inner216_halo5", |b| {
        b.iter(|| -> CopyHaloPoint { copy_halo_ratio(&machine, 216, 5, true) })
    });
    g.finish();
}

criterion_group!(
    benches,
    hydro_step,
    native_store,
    native_copy_halo,
    simulated_copy_halo_reference
);
criterion_main!(benches);
