//! Criterion benches of the simulator and the analytic models — one bench
//! group per paper experiment family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use clover_core::decomp::Decomposition;
use clover_core::{ScalingModel, TrafficModel, TrafficOptions, TINY_GRID};
use clover_machine::icelake_sp_8360y;
use clover_perfmon::{measure_loop, MeasureConfig};
use clover_stencil::loop_by_name;
use clover_ubench::{copy_halo_ratio, store_ratio, StoreKind};

/// Table I: analytic prediction of all 22 loops.
fn table1_traffic_model(c: &mut Criterion) {
    let machine = icelake_sp_8360y();
    let model = TrafficModel::new(machine);
    let decomp = Decomposition::new(72, TINY_GRID, TINY_GRID);
    c.bench_function("table1/predict_all_72_ranks", |b| {
        b.iter(|| model.predict_all(&TrafficOptions::original(72), &decomp))
    });
}

/// Fig. 2/3: the full 72-rank scaling sweep.
fn fig2_scaling_sweep(c: &mut Criterion) {
    let model = ScalingModel::new(icelake_sp_8360y());
    let mut g = c.benchmark_group("fig2_scaling");
    g.sample_size(10);
    g.bench_function("sweep_72_ranks", |b| {
        b.iter(|| model.sweep(72, TrafficOptions::original))
    });
    g.finish();
}

/// Fig. 5: the store-ratio microbenchmark through the cache simulator.
fn fig5_store_ratio(c: &mut Criterion) {
    let machine = icelake_sp_8360y();
    let mut g = c.benchmark_group("fig5_store_ratio");
    g.sample_size(10);
    for cores in [1usize, 18, 72] {
        g.bench_with_input(
            BenchmarkId::new("normal_1stream", cores),
            &cores,
            |b, &cores| b.iter(|| store_ratio(&machine, cores, 1, StoreKind::Normal)),
        );
    }
    g.finish();
}

/// Fig. 8: the copy-with-halo microbenchmark through the cache simulator.
fn fig8_copy_halo(c: &mut Criterion) {
    let machine = icelake_sp_8360y();
    let mut g = c.benchmark_group("fig8_copy_halo");
    g.sample_size(10);
    for inner in [216usize, 1920] {
        g.bench_with_input(
            BenchmarkId::new("halo5_pf_on", inner),
            &inner,
            |b, &inner| b.iter(|| copy_halo_ratio(&machine, inner, 5, true)),
        );
    }
    g.finish();
}

/// Row-sampled loop measurement (the Table I "measurement" path) and its
/// ablation: sampling more rows should not change the balance, which is why
/// row sampling is valid.
fn table1_loop_measurement(c: &mut Criterion) {
    let machine = icelake_sp_8360y();
    let spec = loop_by_name("am04").unwrap();
    let mut g = c.benchmark_group("table1_loop_measurement");
    g.sample_size(10);
    for rows in [8usize, 32] {
        g.bench_with_input(BenchmarkId::new("am04_rows", rows), &rows, |b, &rows| {
            let cfg = MeasureConfig {
                local_inner: 1920,
                rows,
                ..MeasureConfig::single_rank()
            };
            b.iter(|| measure_loop(&machine, &spec, &cfg))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    table1_traffic_model,
    fig2_scaling_sweep,
    fig5_store_ratio,
    fig8_copy_halo,
    table1_loop_measurement
);
criterion_main!(benches);
