//! Criterion benches of the scaling-curve hot loop: the per-point
//! `ScalingModel` reference against the hoisted `ScalingEngine`, and a full
//! 72-point curve unmemoized versus through a `SweepMemo` (cold: first
//! evaluation; warm: a second consumer of the same curve, the fig2+fig3
//! shape).  The `figures bench` harness reports the same paths as
//! machine-readable throughput; these benches give per-loop timings for
//! interactive tuning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use clover_core::{ScalingEngine, ScalingModel, SweepMemo, TrafficOptions, TINY_GRID};
use clover_machine::icelake_sp_8360y;

/// One scaling point: reference model versus hoisted engine.
fn point_evaluators(c: &mut Criterion) {
    let machine = icelake_sp_8360y();
    let model = ScalingModel::new(machine.clone());
    let engine = ScalingEngine::new(machine, TINY_GRID);
    let mut g = c.benchmark_group("scaling_sweep/point72");
    g.sample_size(30);
    g.bench_function("model", |b| {
        b.iter(|| std::hint::black_box(model.point(72, &TrafficOptions::original(72))))
    });
    g.bench_function("engine", |b| {
        b.iter(|| std::hint::black_box(engine.point(72, &TrafficOptions::original(72))))
    });
    g.finish();
}

/// The full 72-point curve: unmemoized model sweep, cold memoized engine
/// sweep, and the warm second consumer of the same curve.
fn curve_sweeps(c: &mut Criterion) {
    let machine = icelake_sp_8360y();
    let model = ScalingModel::new(machine.clone());
    let engine = ScalingEngine::new(machine, TINY_GRID);
    let mut g = c.benchmark_group("scaling_sweep/curve72");
    g.sample_size(20);
    g.throughput(Throughput::Elements(72));
    g.bench_function("model_sweep", |b| {
        b.iter(|| std::hint::black_box(model.sweep(72, TrafficOptions::original)))
    });
    for (name, consumers) in [("engine_memo_cold", 1usize), ("engine_memo_warm", 2)] {
        g.bench_with_input(
            BenchmarkId::new("memoized", name),
            &consumers,
            |b, &consumers| {
                b.iter(|| {
                    let memo = SweepMemo::new();
                    let mut last = Vec::new();
                    for _ in 0..consumers {
                        last = engine.sweep_range_memo(1..=72, TrafficOptions::original, &memo);
                    }
                    std::hint::black_box(last)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, point_evaluators, curve_sweeps);
criterion_main!(benches);
