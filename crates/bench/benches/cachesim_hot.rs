//! Criterion benches of the simulator hot loops introduced by the flat-
//! arena rewrite: cache probes, the allocation-free coalescer store path,
//! and the scalar-versus-batched access drivers.  The `figures bench`
//! harness reports the same paths as machine-readable throughput; these
//! benches give per-loop timings for interactive tuning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use clover_cachesim::hierarchy::{CoreSimOptions, OccupancyContext};
use clover_cachesim::patterns::{StencilOperand, StencilRowSweep};
use clover_cachesim::{AccessKind, AccessRun, CoreSim, SetAssocCache, WriteCoalescer};
use clover_machine::icelake_sp_8360y;

const LINES: u64 = 1 << 13;

/// Flat-arena probe loop: touch-miss followed by the memoized fill, the
/// exact sequence of a streaming demand miss.
fn cache_probe_fill(c: &mut Criterion) {
    let mut g = c.benchmark_group("cachesim_hot/cache");
    g.sample_size(20);
    g.throughput(Throughput::Elements(LINES));
    g.bench_function("probe_fill_stream", |b| {
        let mut cache: SetAssocCache = SetAssocCache::new(48 * 1024, 12);
        b.iter(|| {
            cache.reset();
            for line in 0..LINES {
                cache.touch(line, false);
                cache.fill(line, false);
            }
        })
    });
    g.finish();
}

/// Allocation-free coalescer path: one 64-byte segment per line.
fn coalescer_segments(c: &mut Criterion) {
    let mut g = c.benchmark_group("cachesim_hot/coalescer");
    g.sample_size(20);
    g.throughput(Throughput::Elements(LINES));
    g.bench_function("store_segment_stream", |b| {
        let mut coalescer = WriteCoalescer::default();
        b.iter(|| {
            coalescer.reset();
            for line in 0..LINES {
                std::hint::black_box(coalescer.store_segment(line, 0, 64));
            }
        })
    });
    g.finish();
}

/// Scalar per-element versus batched `drive_run` on a contiguous store
/// sweep — the acceptance pattern of the perf harness.
fn scalar_vs_batched(c: &mut Criterion) {
    let machine = icelake_sp_8360y();
    let elements = LINES * 8;
    let serial = OccupancyContext::serial(&machine);
    let options = CoreSimOptions::default();
    let mut core: CoreSim = CoreSim::new(&machine, serial, options);
    let mut g = c.benchmark_group("cachesim_hot/store_sweep");
    g.sample_size(10);
    g.throughput(Throughput::Elements(elements));
    g.bench_function("scalar", |b| {
        b.iter(|| {
            core.reset(serial, options);
            for i in 0..elements {
                core.store(i * 8, 8);
            }
            core.flush()
        })
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            core.reset(serial, options);
            core.drive_run(AccessRun::store(0, elements));
            core.flush()
        })
    });
    g.finish();
}

/// The segmented stencil driver against its scalar reference.
fn stencil_drivers(c: &mut Criterion) {
    let machine = icelake_sp_8360y();
    let serial = OccupancyContext::serial(&machine);
    let options = CoreSimOptions::default();
    let mut core: CoreSim = CoreSim::new(&machine, serial, options);
    let sweep = StencilRowSweep {
        operands: vec![
            StencilOperand {
                base: 1 << 30,
                offsets: vec![(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)],
                kind: AccessKind::Load,
            },
            StencilOperand {
                base: 1 << 33,
                offsets: vec![(0, 0)],
                kind: AccessKind::Store,
            },
        ],
        row_stride: 1924,
        i0: 2,
        inner: 1920,
        k0: 2,
        rows: 24,
    };
    let accesses = sweep.iterations() * 6;
    let mut g = c.benchmark_group("cachesim_hot/stencil");
    g.sample_size(10);
    g.throughput(Throughput::Elements(accesses));
    for (name, batched) in [("scalar", false), ("batched", true)] {
        g.bench_with_input(BenchmarkId::new("drive", name), &batched, |b, &batched| {
            b.iter(|| {
                core.reset(serial, options);
                if batched {
                    sweep.drive(&mut core);
                } else {
                    sweep.drive_scalar(&mut core);
                }
                core.flush()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    cache_probe_fill,
    coalescer_segments,
    scalar_vs_batched,
    stencil_drivers
);
criterion_main!(benches);
