//! Perf-trajectory harness: throughput measurements of the simulator hot
//! loops.
//!
//! `figures bench --json` runs a fixed set of patterns through the cache
//! simulator, times each one wall-clock and reports *simulated element
//! accesses per second* — a machine-readable baseline (`BENCH_<PR>.json`,
//! checked into the repo root) that every future PR can diff its own run
//! against.  Patterns come in scalar/batched pairs where both paths exist,
//! so the report also carries the speedup of the line-granular fast path
//! over the per-element reference — the quantity the PR 4 rewrite is gated
//! on (≥ 3× on the contiguous store sweep).
//!
//! Timing uses best-of-`reps` wall-clock (the standard throughput
//! estimator: the minimum is the run least disturbed by the machine).  The
//! numbers are hardware-dependent by nature; the JSON is for trajectory
//! tracking, not golden checking.

use std::time::Instant;

use clover_cachesim::hierarchy::{CoreSimOptions, OccupancyContext};
use clover_cachesim::patterns::{RowSweep, StencilOperand, StencilRowSweep};
use clover_cachesim::{AccessKind, AccessRun, CoreSim, NodeSim, SimConfig};
use clover_machine::{icelake_sp_8360y, Machine};

/// Throughput of one benchmark pattern.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Pattern identifier (stable across PRs).
    pub name: &'static str,
    /// Simulated 8-byte element accesses per repetition.
    pub elements: u64,
    /// Timed repetitions (after one warm-up).
    pub reps: usize,
    /// Best (minimum) wall-clock seconds of a repetition.
    pub best_secs: f64,
    /// `elements / best_secs`.
    pub elements_per_sec: f64,
}

/// A scalar-versus-batched speedup derived from two patterns.
#[derive(Debug, Clone)]
pub struct Speedup {
    /// Ratio identifier, e.g. `store_sweep` or `store_sweep_vs_PR3_scalar`.
    pub name: String,
    /// Throughput of the batched pattern over the scalar one.
    pub factor: f64,
}

/// The full throughput report of one harness run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Report format version.
    pub schema: u32,
    /// Free-form label, e.g. `PR4` for the checked-in baseline.
    pub label: String,
    /// Whether the reduced CI sizing was used.
    pub quick: bool,
    /// Per-pattern throughputs.
    pub results: Vec<BenchResult>,
    /// Batched-over-scalar speedups.
    pub speedups: Vec<Speedup>,
}

impl BenchReport {
    /// Throughput of a pattern by name.
    pub fn throughput(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.elements_per_sec)
    }

    /// Speedup factor by name.
    pub fn speedup(&self, name: &str) -> Option<f64> {
        self.speedups
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.factor)
    }

    /// Append speedups of this run against a previously recorded baseline
    /// report (a parsed `BENCH_*.json`): same-name patterns compare
    /// directly, and a `<family>_batched` pattern additionally compares
    /// against the baseline's `<family>_scalar` — which is how the fast
    /// path is measured against the pre-refactor per-element code (whose
    /// reports only contain scalar patterns).
    pub fn with_baseline(&mut self, baseline: &BaselineReport) {
        for r in &self.results {
            if let Some(base) = baseline.throughput(r.name) {
                self.speedups.push(Speedup {
                    name: format!("{}_vs_{}", r.name, baseline.label),
                    factor: r.elements_per_sec / base,
                });
            }
            if let Some(family) = r.name.strip_suffix("_batched") {
                if let Some(base) = baseline.throughput(&format!("{family}_scalar")) {
                    self.speedups.push(Speedup {
                        name: format!("{family}_vs_{}_scalar", baseline.label),
                        factor: r.elements_per_sec / base,
                    });
                }
            }
        }
    }

    /// Machine-readable JSON rendering (the `BENCH_*.json` format).
    pub fn to_json(&self) -> String {
        let results: Vec<String> = self
            .results
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\":\"{}\",\"elements\":{},\"reps\":{},\
                     \"best_secs\":{:.6e},\"elements_per_sec\":{:.6e}}}",
                    r.name, r.elements, r.reps, r.best_secs, r.elements_per_sec
                )
            })
            .collect();
        let speedups: Vec<String> = self
            .speedups
            .iter()
            .map(|s| format!("{{\"name\":\"{}\",\"factor\":{:.3}}}", s.name, s.factor))
            .collect();
        format!(
            "{{\"schema\":{},\"label\":\"{}\",\"quick\":{},\"unit\":\"elements/sec\",\
             \"results\":[{}],\"speedups\":[{}]}}\n",
            self.schema,
            self.label,
            self.quick,
            results.join(","),
            speedups.join(",")
        )
    }

    /// Human-readable table rendering.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "==== bench: simulator throughput ({} sizing) ====\n\
             pattern,elements,reps,best_ms,elements_per_sec\n",
            if self.quick { "quick" } else { "full" }
        );
        for r in &self.results {
            out.push_str(&format!(
                "{},{},{},{:.3},{:.3e}\n",
                r.name,
                r.elements,
                r.reps,
                r.best_secs * 1e3,
                r.elements_per_sec
            ));
        }
        for s in &self.speedups {
            out.push_str(&format!("# speedup {}: {:.2}x\n", s.name, s.factor));
        }
        out
    }
}

/// A previously recorded `BENCH_*.json`, reduced to what trajectory
/// comparisons need: the label and the per-pattern throughputs.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// The recorded report's label (e.g. `PR3`).
    pub label: String,
    /// `(pattern name, elements_per_sec)` pairs.
    pub throughputs: Vec<(String, f64)>,
}

impl BaselineReport {
    /// Throughput of a pattern by name.
    pub fn throughput(&self, name: &str) -> Option<f64> {
        self.throughputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Parse the JSON this harness emits ([`BenchReport::to_json`]).  This
    /// is a schema-specific extractor, not a general JSON parser: it reads
    /// the top-level `label` and every `"name":"…"` paired with the
    /// following `"elements_per_sec":…`, which is exactly what the format
    /// guarantees.  Returns `None` when either is missing or malformed.
    pub fn parse(json: &str) -> Option<Self> {
        let label = extract_string_field(json, "label")?;
        let mut throughputs = Vec::new();
        let mut rest = json;
        while let Some(pos) = rest.find("\"name\":\"") {
            let after = &rest[pos + 8..];
            let end = after.find('"')?;
            let name = &after[..end];
            let after_name = &after[end..];
            // `elements_per_sec` belongs to the same object: it must appear
            // before the object's closing brace.
            let close = after_name.find('}')?;
            if let Some(vpos) = after_name[..close].find("\"elements_per_sec\":") {
                let vstart = &after_name[vpos + 19..close];
                let vend = vstart
                    .find(|c: char| c == ',' || c == '}')
                    .unwrap_or(vstart.len());
                let value: f64 = vstart[..vend].trim().parse().ok()?;
                if !value.is_finite() || value <= 0.0 {
                    return None;
                }
                throughputs.push((name.to_string(), value));
            }
            rest = &after_name[close..];
        }
        if throughputs.is_empty() {
            return None;
        }
        Some(Self { label, throughputs })
    }
}

/// Extract a top-level `"field":"value"` string from the report JSON.
fn extract_string_field(json: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":\"");
    let pos = json.find(&needle)?;
    let after = &json[pos + needle.len()..];
    let end = after.find('"')?;
    Some(after[..end].to_string())
}

/// Time `reps` repetitions of `run` (after one warm-up) and report the
/// throughput for `elements` element accesses per repetition.
fn measure(name: &'static str, elements: u64, reps: usize, mut run: impl FnMut()) -> BenchResult {
    run(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    BenchResult {
        name,
        elements,
        reps,
        best_secs: best,
        elements_per_sec: elements as f64 / best.max(1e-12),
    }
}

fn serial_core(machine: &Machine) -> CoreSim {
    CoreSim::new(
        machine,
        OccupancyContext::serial(machine),
        CoreSimOptions::default(),
    )
}

/// The copy kernel as a two-operand stencil (one batch per row).
fn copy_sweep(elements: u64, rows: u64) -> StencilRowSweep {
    StencilRowSweep {
        operands: vec![
            StencilOperand {
                base: 1 << 30,
                offsets: vec![(0, 0)],
                kind: AccessKind::Load,
            },
            StencilOperand {
                base: 1 << 33,
                offsets: vec![(0, 0)],
                kind: AccessKind::Store,
            },
        ],
        row_stride: elements + 8,
        i0: 0,
        inner: elements,
        k0: 0,
        rows,
    }
}

/// An am04-shaped hotspot loop: a 5-point read stencil, a streamed read
/// pair and a written array (the row-sampled Table I measurement shape).
fn hotspot_sweep(inner: u64, rows: u64) -> StencilRowSweep {
    StencilRowSweep {
        operands: vec![
            StencilOperand {
                base: 1 << 30,
                offsets: vec![(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)],
                kind: AccessKind::Load,
            },
            StencilOperand {
                base: 1 << 33,
                offsets: vec![(0, 0), (1, 0)],
                kind: AccessKind::Load,
            },
            StencilOperand {
                base: 1 << 34,
                offsets: vec![(0, 0)],
                kind: AccessKind::Store,
            },
        ],
        row_stride: inner + 4,
        i0: 2,
        inner,
        k0: 2,
        rows,
    }
}

/// Run the throughput harness.  `quick` shrinks every pattern ~16× for CI
/// smoke runs; `label` is stamped into the report (`PR4` for the checked-in
/// baseline).
pub fn run_perf_bench(quick: bool, label: &str) -> BenchReport {
    let machine = icelake_sp_8360y();
    let reps = if quick { 3 } else { 5 };
    // Full sizing mirrors the order of magnitude the real experiments
    // simulate per measurement region (store_ratio streams 32 K elements
    // per core, the row-sampled loop measurement a few thousand per row) —
    // large enough to stream through L1/L2, small enough that per-
    // measurement fixed costs stay visible, because eliminating those is
    // part of what the harness tracks.
    let n: u64 = if quick { 1 << 14 } else { 1 << 18 };
    let rows: u64 = if quick { 8 } else { 96 };
    let mut results = Vec::new();

    // Contiguous store sweep: the satellite acceptance pattern.  The scalar
    // variant feeds one 8-byte store per element — the pre-refactor unit of
    // work — while the batched variant goes through `drive_run`.
    {
        let mut core = serial_core(&machine);
        results.push(measure("store_sweep_scalar", n, reps, || {
            core.reset(
                OccupancyContext::serial(&machine),
                CoreSimOptions::default(),
            );
            for i in 0..n {
                core.store(i * 8, 8);
            }
            core.flush();
        }));
        results.push(measure("store_sweep_batched", n, reps, || {
            core.reset(
                OccupancyContext::serial(&machine),
                CoreSimOptions::default(),
            );
            core.drive_run(AccessRun::store(0, n));
            core.flush();
        }));
        results.push(measure("load_sweep_scalar", n, reps, || {
            core.reset(
                OccupancyContext::serial(&machine),
                CoreSimOptions::default(),
            );
            for i in 0..n {
                core.load(i * 8, 8);
            }
            core.flush();
        }));
        results.push(measure("load_sweep_batched", n, reps, || {
            core.reset(
                OccupancyContext::serial(&machine),
                CoreSimOptions::default(),
            );
            core.drive_run(AccessRun::load(0, n));
            core.flush();
        }));
        // Row sweep with an unaligned halo gap (Fig. 8 shape, store side).
        let row_elems = (n / 256).max(216);
        let sweep = RowSweep {
            base: 0,
            inner: row_elems,
            halo: 5,
            rows: 256,
            kind: AccessKind::Store,
        };
        results.push(measure("row_sweep_batched", row_elems * 256, reps, || {
            core.reset(
                OccupancyContext::serial(&machine),
                CoreSimOptions::default(),
            );
            sweep.drive(&mut core);
            core.flush();
        }));
        // Interleaved copy (2 element accesses per iteration).
        let copy = copy_sweep(n / rows.max(1) / 2, rows);
        results.push(measure(
            "copy_interleaved_batched",
            copy.iterations() * 2,
            reps,
            || {
                core.reset(
                    OccupancyContext::serial(&machine),
                    CoreSimOptions::default(),
                );
                copy.drive(&mut core);
                core.flush();
            },
        ));
        // Hotspot stencil (8 element accesses per iteration).
        let hotspot = hotspot_sweep(1920, rows);
        results.push(measure(
            "stencil_hotspot_batched",
            hotspot.iterations() * 8,
            reps,
            || {
                core.reset(
                    OccupancyContext::serial(&machine),
                    CoreSimOptions::default(),
                );
                hotspot.drive(&mut core);
                core.flush();
            },
        ));
    }

    // Node-level SPMD path: representative-core loop with `CoreSim` reuse.
    {
        let ranks = 19; // two domain-load levels → one reset in the loop
        let per_rank = n / 16;
        let sim = NodeSim::new(SimConfig::new(machine.clone(), ranks));
        results.push(measure("node_spmd_store", per_rank * 2, reps, || {
            // Two distinct domain loads are simulated (18 + 1 cores).
            let report = sim.run_spmd(|rank, core| {
                core.drive_run(AccessRun::store((rank as u64) << 36, per_rank));
            });
            assert!(report.total.write_lines > 0.0);
        }));
    }

    let ratio = |a: &str, b: &str| -> f64 {
        let get = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.elements_per_sec)
                .unwrap_or(f64::NAN)
        };
        get(b) / get(a)
    };
    let speedups = vec![
        Speedup {
            name: "store_sweep".to_string(),
            factor: ratio("store_sweep_scalar", "store_sweep_batched"),
        },
        Speedup {
            name: "load_sweep".to_string(),
            factor: ratio("load_sweep_scalar", "load_sweep_batched"),
        },
    ];

    BenchReport {
        schema: 1,
        label: label.to_string(),
        quick,
        results,
        speedups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_has_all_patterns_and_speedups() {
        let report = run_perf_bench(true, "test");
        let names: Vec<&str> = report.results.iter().map(|r| r.name).collect();
        for expected in [
            "store_sweep_scalar",
            "store_sweep_batched",
            "load_sweep_scalar",
            "load_sweep_batched",
            "row_sweep_batched",
            "copy_interleaved_batched",
            "stencil_hotspot_batched",
            "node_spmd_store",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        for r in &report.results {
            assert!(r.elements > 0 && r.elements_per_sec > 0.0, "{}", r.name);
        }
        assert!(report.speedup("store_sweep").unwrap() > 0.0);
        assert!(report.speedup("load_sweep").unwrap() > 0.0);
        assert!(report.throughput("store_sweep_batched").unwrap() > 0.0);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let report = BenchReport {
            schema: 1,
            label: "unit".into(),
            quick: true,
            results: vec![BenchResult {
                name: "store_sweep_scalar",
                elements: 100,
                reps: 3,
                best_secs: 0.5,
                elements_per_sec: 200.0,
            }],
            speedups: vec![Speedup {
                name: "store_sweep".to_string(),
                factor: 3.5,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\":1"));
        assert!(json.contains("\"label\":\"unit\""));
        assert!(json.contains("\"unit\":\"elements/sec\""));
        assert!(json.contains("\"name\":\"store_sweep_scalar\""));
        assert!(json.contains("\"factor\":3.500"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let text = report.to_text();
        assert!(text.contains("store_sweep_scalar"));
        assert!(text.contains("3.50x"));
    }

    #[test]
    fn speedups_are_finite_and_positive() {
        // The absolute 3× acceptance bar is against the *pre-refactor*
        // (PR 3) scalar path and is recorded machine-matched in
        // `BENCH_PR4.json` vs `BENCH_PR3.json`; asserting any wall-clock
        // ratio here would tie a tier-1 test to the load of whatever
        // machine runs it.  Only the structural property is gated: the
        // ratios exist and are well-formed numbers.
        let report = run_perf_bench(true, "test");
        for name in ["store_sweep", "load_sweep"] {
            let s = report.speedup(name).unwrap();
            assert!(s.is_finite() && s > 0.0, "{name}: {s}");
        }
    }

    #[test]
    fn baseline_parsing_and_comparison_round_trip() {
        let mut report = BenchReport {
            schema: 1,
            label: "PR9".into(),
            quick: false,
            results: vec![
                BenchResult {
                    name: "store_sweep_batched",
                    elements: 100,
                    reps: 5,
                    best_secs: 1.0,
                    elements_per_sec: 90.0,
                },
                BenchResult {
                    name: "store_sweep_scalar",
                    elements: 100,
                    reps: 5,
                    best_secs: 1.0,
                    elements_per_sec: 45.0,
                },
            ],
            speedups: vec![],
        };
        // Parse a baseline out of the exact JSON the harness emits.
        let baseline_json = BenchReport {
            schema: 1,
            label: "PR3".into(),
            quick: false,
            results: vec![BenchResult {
                name: "store_sweep_scalar",
                elements: 100,
                reps: 5,
                best_secs: 1.0,
                elements_per_sec: 30.0,
            }],
            speedups: vec![],
        }
        .to_json();
        let baseline = BaselineReport::parse(&baseline_json).unwrap();
        assert_eq!(baseline.label, "PR3");
        assert_eq!(baseline.throughput("store_sweep_scalar"), Some(30.0));

        report.with_baseline(&baseline);
        // Same-name comparison and the batched-vs-pre-refactor-scalar one.
        let same = report.speedup("store_sweep_scalar_vs_PR3").unwrap();
        assert!((same - 1.5).abs() < 1e-9, "{same}");
        let cross = report.speedup("store_sweep_vs_PR3_scalar").unwrap();
        assert!((cross - 3.0).abs() < 1e-9, "{cross}");
    }

    #[test]
    fn baseline_parser_rejects_garbage() {
        assert!(BaselineReport::parse("").is_none());
        assert!(BaselineReport::parse("{\"label\":\"x\"}").is_none());
        assert!(BaselineReport::parse(
            "{\"label\":\"x\",\"results\":[{\"name\":\"a\",\"elements_per_sec\":-1}]}"
        )
        .is_none());
        assert!(BaselineReport::parse(
            "{\"label\":\"x\",\"results\":[{\"name\":\"a\",\"elements_per_sec\":NaN}]}"
        )
        .is_none());
    }
}
