//! Perf-trajectory harness: throughput measurements of the simulator hot
//! loops.
//!
//! `figures bench --json` runs a fixed set of patterns through the cache
//! simulator, times each one wall-clock and reports *simulated element
//! accesses per second* — a machine-readable baseline (`BENCH_<PR>.json`,
//! checked into the repo root) that every future PR can diff its own run
//! against.  Patterns come in scalar/batched pairs where both paths exist,
//! so the report also carries the speedup of the line-granular fast path
//! over the per-element reference — the quantity the PR 4 rewrite is gated
//! on (≥ 3× on the contiguous store sweep).
//!
//! PR 5 adds *sweep-level* patterns: whole scaling curves, sweep plans and
//! store-ratio curves, each measured once on the PR 4 code path (per-point
//! `ScalingModel`, unmemoized `run_spmd`) and once through the cross-sweep
//! memo + nested scaling engine, with the ratios recorded as the
//! `scaling_curve_72` and `sweep_plan_nested` speedups — the quantities
//! this PR is gated on (≥ 3×).  The store-curve pair is tracked as plain
//! measurement rows (its within-curve memo dedup is worth ~1.7-1.9×).
//! `--baseline` comparisons can additionally be turned into a hard gate
//! with `--max-regression <pct>` ([`BenchReport::regressions`]).
//!
//! PR 6 adds the `policy_grid_spmd` pattern: the whole 4 replacement × 3
//! write-policy grid through the monomorphised dispatcher, with the
//! `policy_dispatch` in-run ratio against the default-only `node_spmd_store`
//! pattern guarding that the policy space keeps compiling out to zero cost
//! on the paper's configuration.
//!
//! PR 10 adds the serve-daemon pair: the same warm concurrent request
//! stream served once thread-per-request (the pre-PR10 `serve_unix`
//! shape: one spawned thread per connection, every response re-rendered)
//! and once through the bounded worker pool + response cache, with the
//! ratio recorded as the `serve_throughput` speedup — the quantity this
//! PR is gated on (≥ 3×).
//!
//! Timing uses best-of-`reps` wall-clock (the standard throughput
//! estimator: the minimum is the run least disturbed by the machine).  The
//! numbers are hardware-dependent by nature; the JSON is for trajectory
//! tracking, not golden checking.

use std::sync::{mpsc, Arc};
use std::time::Instant;

use clover_cachesim::hierarchy::{CoreSimOptions, OccupancyContext};
use clover_cachesim::patterns::{RowSweep, StencilOperand, StencilRowSweep};
use clover_cachesim::{
    AccessKind, AccessRun, CoreSim, KernelSpec, NodeSim, RankBase, SetAssocCache, SimConfig,
    SimMemo, TrueLru,
};
use clover_core::{ScalingEngine, ScalingModel, SweepMemo, TrafficOptions, TINY_GRID};
use clover_machine::{
    icelake_sp_8360y, Machine, MachinePreset, ReplacementPolicyKind, WritePolicyKind,
};
use clover_scenario::{run_scenarios_with, RankRange, Stage, SweepPlan};
use clover_service::{Response, ShardedQueue, SweepService, WorkerPool};
use clover_ubench::{store_ratio, store_ratio_memo, StoreKind};

/// Throughput of one benchmark pattern.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Pattern identifier (stable across PRs).
    pub name: &'static str,
    /// Simulated 8-byte element accesses per repetition.
    pub elements: u64,
    /// Timed repetitions (after one warm-up).
    pub reps: usize,
    /// Best (minimum) wall-clock seconds of a repetition.
    pub best_secs: f64,
    /// `elements / best_secs`.
    pub elements_per_sec: f64,
}

/// A scalar-versus-batched speedup derived from two patterns.
#[derive(Debug, Clone)]
pub struct Speedup {
    /// Ratio identifier, e.g. `store_sweep` or `store_sweep_vs_PR3_scalar`.
    pub name: String,
    /// Throughput of the batched pattern over the scalar one.
    pub factor: f64,
}

/// The full throughput report of one harness run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Report format version.
    pub schema: u32,
    /// Free-form label, e.g. `PR4` for the checked-in baseline.
    pub label: String,
    /// Whether the reduced CI sizing was used.
    pub quick: bool,
    /// Per-pattern throughputs.
    pub results: Vec<BenchResult>,
    /// Batched-over-scalar speedups.
    pub speedups: Vec<Speedup>,
}

impl BenchReport {
    /// Throughput of a pattern by name.
    pub fn throughput(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.elements_per_sec)
    }

    /// Speedup factor by name.
    pub fn speedup(&self, name: &str) -> Option<f64> {
        self.speedups
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.factor)
    }

    /// Append speedups of this run against a previously recorded baseline
    /// report (a parsed `BENCH_*.json`): same-name patterns compare
    /// directly, and a `<family>_batched` pattern additionally compares
    /// against the baseline's `<family>_scalar` — which is how the fast
    /// path is measured against the pre-refactor per-element code (whose
    /// reports only contain scalar patterns).
    pub fn with_baseline(&mut self, baseline: &BaselineReport) {
        for r in &self.results {
            if let Some(base) = baseline.throughput(r.name) {
                self.speedups.push(Speedup {
                    name: format!("{}_vs_{}", r.name, baseline.label),
                    factor: r.elements_per_sec / base,
                });
            }
            if let Some(family) = r.name.strip_suffix("_batched") {
                if let Some(base) = baseline.throughput(&format!("{family}_scalar")) {
                    self.speedups.push(Speedup {
                        name: format!("{family}_vs_{}_scalar", baseline.label),
                        factor: r.elements_per_sec / base,
                    });
                }
            }
        }
    }

    /// Same-name regressions against `baseline` that exceed `max_pct`
    /// percent: the comparisons behind the `figures bench --max-regression`
    /// gate.  A returned entry's `factor` is the current value over the
    /// baseline's (1.0 = unchanged; 0.5 = half); entries below
    /// `1 - max_pct/100` are regressions.
    ///
    /// Two comparison families:
    ///
    /// * **throughputs** — skipped only on a *known* sizing mismatch
    ///   (`quick` flags recorded on both sides and different): patterns
    ///   with per-measurement fixed costs report far lower element
    ///   throughput at the reduced sizing, so a quick CI run gating
    ///   against a full-sizing record would flag phantom regressions.  A
    ///   record predating the flag (`baseline.quick == None`) is compared
    ///   anyway — the caller warns about the unknown sizing, but silently
    ///   dropping every throughput row would let real regressions sail
    ///   through the gate;
    /// * **in-run speedup factors** (e.g. `scaling_curve_72`) — always
    ///   compared: both sides of each ratio were measured in the same run,
    ///   making them robust to hardware and sizing differences, and a
    ///   collapse to ~1× is exactly the "fast path silently fell back"
    ///   signal the gate exists for.
    pub fn regressions(&self, baseline: &BaselineReport, max_pct: f64) -> Vec<Speedup> {
        let floor = 1.0 - max_pct / 100.0;
        let mut flagged = Vec::new();
        if baseline.quick.map_or(true, |q| q == self.quick) {
            for r in &self.results {
                if let Some(base) = baseline.throughput(r.name) {
                    let factor = r.elements_per_sec / base;
                    if factor < floor {
                        flagged.push(Speedup {
                            name: r.name.to_string(),
                            factor,
                        });
                    }
                }
            }
        }
        for s in &self.speedups {
            if let Some(base) = baseline.speedup(&s.name) {
                let factor = s.factor / base;
                if factor < floor {
                    flagged.push(Speedup {
                        name: format!("{}_speedup", s.name),
                        factor,
                    });
                }
            }
        }
        flagged
    }

    /// Machine-readable JSON rendering (the `BENCH_*.json` format).
    /// Strings (the label and the pattern/speedup names, which embed
    /// baseline labels via [`BenchReport::with_baseline`]) are escaped, so
    /// a hostile label cannot forge report fields.
    pub fn to_json(&self) -> String {
        let results: Vec<String> = self
            .results
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\":\"{}\",\"elements\":{},\"reps\":{},\
                     \"best_secs\":{:.6e},\"elements_per_sec\":{:.6e}}}",
                    json_escape(r.name),
                    r.elements,
                    r.reps,
                    r.best_secs,
                    r.elements_per_sec
                )
            })
            .collect();
        let speedups: Vec<String> = self
            .speedups
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":\"{}\",\"factor\":{:.3}}}",
                    json_escape(&s.name),
                    s.factor
                )
            })
            .collect();
        format!(
            "{{\"schema\":{},\"label\":\"{}\",\"quick\":{},\"unit\":\"elements/sec\",\
             \"results\":[{}],\"speedups\":[{}]}}\n",
            self.schema,
            json_escape(&self.label),
            self.quick,
            results.join(","),
            speedups.join(",")
        )
    }

    /// Human-readable table rendering.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "==== bench: simulator throughput ({} sizing) ====\n\
             pattern,elements,reps,best_ms,elements_per_sec\n",
            if self.quick { "quick" } else { "full" }
        );
        for r in &self.results {
            out.push_str(&format!(
                "{},{},{},{:.3},{:.3e}\n",
                r.name,
                r.elements,
                r.reps,
                r.best_secs * 1e3,
                r.elements_per_sec
            ));
        }
        for s in &self.speedups {
            out.push_str(&format!("# speedup {}: {:.2}x\n", s.name, s.factor));
        }
        out
    }
}

/// A previously recorded `BENCH_*.json`, reduced to what trajectory
/// comparisons need: the label, the sizing flag, the per-pattern
/// throughputs and the in-run speedup factors.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// The recorded report's label (e.g. `PR3`).
    pub label: String,
    /// Whether the record was taken with the reduced CI sizing (`None` for
    /// records predating the field).
    pub quick: Option<bool>,
    /// `(pattern name, elements_per_sec)` pairs.
    pub throughputs: Vec<(String, f64)>,
    /// `(speedup name, factor)` pairs of the record's in-run ratios.
    pub speedups: Vec<(String, f64)>,
}

impl BaselineReport {
    /// Throughput of a pattern by name.
    pub fn throughput(&self, name: &str) -> Option<f64> {
        self.throughputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Recorded speedup factor by name.
    pub fn speedup(&self, name: &str) -> Option<f64> {
        self.speedups
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Parse the JSON this harness emits ([`BenchReport::to_json`]).  This
    /// is a schema-specific extractor, not a general JSON parser: it reads
    /// the top-level `label` string and `quick` flag with the same
    /// escape-aware string tokenizer used for row names, then every
    /// `"name":"…"` paired with the following `"elements_per_sec":…`
    /// (result rows) or `"factor":…` (speedup rows), which is exactly what
    /// the format guarantees.  String contents are unescaped, and the
    /// `quick` flag is only recognised as an actual top-level field — a
    /// label *containing* `"quick":true` stays data.  Returns `None` when
    /// the label or all rows are missing or malformed.
    pub fn parse(json: &str) -> Option<Self> {
        let label = extract_string_field(json, "label")?;
        let quick = extract_bool_field(json, "quick");
        let mut throughputs = Vec::new();
        let mut speedups = Vec::new();
        let mut rest = json;
        while let Some(pos) = rest.find("\"name\":\"") {
            let after = &rest[pos + 8..];
            let (name, consumed) = parse_json_string(after)?;
            // Keep the closing quote: the value scan below starts on it.
            let after_name = &after[consumed - 1..];
            // The value belongs to the same object: it must appear before
            // the object's closing brace.
            let close = after_name.find('}')?;
            let field_value = |field: &str| -> Option<Result<f64, ()>> {
                after_name[..close].find(field).map(|vpos| {
                    let vstart = &after_name[vpos + field.len()..close];
                    let vend = vstart
                        .find(|c: char| c == ',' || c == '}')
                        .unwrap_or(vstart.len());
                    vstart[..vend].trim().parse::<f64>().map_err(|_| ())
                })
            };
            if let Some(value) = field_value("\"elements_per_sec\":") {
                let value = value.ok()?;
                if !value.is_finite() || value <= 0.0 {
                    return None;
                }
                throughputs.push((name, value));
            } else if let Some(value) = field_value("\"factor\":") {
                let value = value.ok()?;
                if !value.is_finite() || value <= 0.0 {
                    return None;
                }
                speedups.push((name, value));
            }
            rest = &after_name[close..];
        }
        if throughputs.is_empty() {
            return None;
        }
        Some(Self {
            label,
            quick,
            throughputs,
            speedups,
        })
    }
}

/// Escape `s` for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Tokenize a JSON string body starting just past its opening quote:
/// returns the unescaped contents and the byte length consumed
/// *including* the closing quote.  `None` on an unterminated string or a
/// malformed escape.
fn parse_json_string(s: &str) -> Option<(String, usize)> {
    let bytes = s.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some((out, i + 1)),
            b'\\' => {
                match bytes.get(i + 1)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let code = u32::from_str_radix(s.get(i + 2..i + 6)?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        i += 4;
                    }
                    _ => return None,
                }
                i += 2;
            }
            _ => {
                // `i` always sits on a char boundary: the arms above only
                // consume full ASCII escapes, and this arm full chars.
                let c = s[i..].chars().next()?;
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
    None
}

/// Find a field of the report's *top-level* object and return the slice
/// starting at its value.  Walks the document tracking brace depth and
/// skipping string contents with the escape-aware tokenizer, so field
/// names inside nested objects or embedded in string *values* (a hostile
/// label) never match.
fn top_level_value<'a>(json: &'a str, field: &str) -> Option<&'a str> {
    let bytes = json.as_bytes();
    let mut depth = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b'"' => {
                let (name, consumed) = parse_json_string(&json[i + 1..])?;
                i += 1 + consumed;
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                // A string followed by `:` is a key; a value string is
                // followed by `,` or a closing bracket and just skipped.
                if depth == 1 && bytes.get(j) == Some(&b':') && name == field {
                    let mut k = j + 1;
                    while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                        k += 1;
                    }
                    return Some(&json[k..]);
                }
            }
            _ => i += 1,
        }
    }
    None
}

/// Extract and unescape a top-level `"field":"value"` string.
fn extract_string_field(json: &str, field: &str) -> Option<String> {
    let value = top_level_value(json, field)?;
    parse_json_string(value.strip_prefix('"')?).map(|(s, _)| s)
}

/// Extract a top-level `"field":true|false` flag.
fn extract_bool_field(json: &str, field: &str) -> Option<bool> {
    let value = top_level_value(json, field)?;
    if value.starts_with("true") {
        Some(true)
    } else if value.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Time `reps` repetitions of `run` (after one warm-up) and report the
/// throughput for `elements` element accesses per repetition.
fn measure(name: &'static str, elements: u64, reps: usize, mut run: impl FnMut()) -> BenchResult {
    run(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    BenchResult {
        name,
        elements,
        reps,
        best_secs: best,
        elements_per_sec: elements as f64 / best.max(1e-12),
    }
}

fn serial_core(machine: &Machine) -> CoreSim {
    CoreSim::new(
        machine,
        OccupancyContext::serial(machine),
        CoreSimOptions::default(),
    )
}

/// The copy kernel as a two-operand stencil (one batch per row).
fn copy_sweep(elements: u64, rows: u64) -> StencilRowSweep {
    StencilRowSweep {
        operands: vec![
            StencilOperand {
                base: 1 << 30,
                offsets: vec![(0, 0)],
                kind: AccessKind::Load,
            },
            StencilOperand {
                base: 1 << 33,
                offsets: vec![(0, 0)],
                kind: AccessKind::Store,
            },
        ],
        row_stride: elements + 8,
        i0: 0,
        inner: elements,
        k0: 0,
        rows,
    }
}

/// An am04-shaped hotspot loop: a 5-point read stencil, a streamed read
/// pair and a written array (the row-sampled Table I measurement shape).
fn hotspot_sweep(inner: u64, rows: u64) -> StencilRowSweep {
    StencilRowSweep {
        operands: vec![
            StencilOperand {
                base: 1 << 30,
                offsets: vec![(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)],
                kind: AccessKind::Load,
            },
            StencilOperand {
                base: 1 << 33,
                offsets: vec![(0, 0), (1, 0)],
                kind: AccessKind::Load,
            },
            StencilOperand {
                base: 1 << 34,
                offsets: vec![(0, 0)],
                kind: AccessKind::Store,
            },
        ],
        row_stride: inner + 4,
        i0: 2,
        inner,
        k0: 2,
        rows,
    }
}

/// Run the throughput harness.  `quick` shrinks every pattern ~16× for CI
/// smoke runs; `label` is stamped into the report (`PR4` for the checked-in
/// baseline).
pub fn run_perf_bench(quick: bool, label: &str) -> BenchReport {
    let machine = icelake_sp_8360y();
    let reps = if quick { 3 } else { 5 };
    // Full sizing mirrors the order of magnitude the real experiments
    // simulate per measurement region (store_ratio streams 32 K elements
    // per core, the row-sampled loop measurement a few thousand per row) —
    // large enough to stream through L1/L2, small enough that per-
    // measurement fixed costs stay visible, because eliminating those is
    // part of what the harness tracks.
    let n: u64 = if quick { 1 << 14 } else { 1 << 18 };
    let rows: u64 = if quick { 8 } else { 96 };
    let mut results = Vec::new();

    // Contiguous store sweep: the satellite acceptance pattern.  The scalar
    // variant feeds one 8-byte store per element — the pre-refactor unit of
    // work — while the batched variant goes through `drive_run`.
    {
        let mut core = serial_core(&machine);
        results.push(measure("store_sweep_scalar", n, reps, || {
            core.reset(
                OccupancyContext::serial(&machine),
                CoreSimOptions::default(),
            );
            for i in 0..n {
                core.store(i * 8, 8);
            }
            core.flush();
        }));
        results.push(measure("store_sweep_batched", n, reps, || {
            core.reset(
                OccupancyContext::serial(&machine),
                CoreSimOptions::default(),
            );
            core.drive_run(AccessRun::store(0, n));
            core.flush();
        }));
        results.push(measure("load_sweep_scalar", n, reps, || {
            core.reset(
                OccupancyContext::serial(&machine),
                CoreSimOptions::default(),
            );
            for i in 0..n {
                core.load(i * 8, 8);
            }
            core.flush();
        }));
        results.push(measure("load_sweep_batched", n, reps, || {
            core.reset(
                OccupancyContext::serial(&machine),
                CoreSimOptions::default(),
            );
            core.drive_run(AccessRun::load(0, n));
            core.flush();
        }));
        // Row sweep with an unaligned halo gap (Fig. 8 shape, store side).
        let row_elems = (n / 256).max(216);
        let sweep = RowSweep {
            base: 0,
            inner: row_elems,
            halo: 5,
            rows: 256,
            kind: AccessKind::Store,
        };
        results.push(measure("row_sweep_batched", row_elems * 256, reps, || {
            core.reset(
                OccupancyContext::serial(&machine),
                CoreSimOptions::default(),
            );
            sweep.drive(&mut core);
            core.flush();
        }));
        // Interleaved copy (2 element accesses per iteration).
        let copy = copy_sweep(n / rows.max(1) / 2, rows);
        results.push(measure(
            "copy_interleaved_batched",
            copy.iterations() * 2,
            reps,
            || {
                core.reset(
                    OccupancyContext::serial(&machine),
                    CoreSimOptions::default(),
                );
                copy.drive(&mut core);
                core.flush();
            },
        ));
        // Hotspot stencil (8 element accesses per iteration).
        let hotspot = hotspot_sweep(1920, rows);
        results.push(measure(
            "stencil_hotspot_batched",
            hotspot.iterations() * 8,
            reps,
            || {
                core.reset(
                    OccupancyContext::serial(&machine),
                    CoreSimOptions::default(),
                );
                hotspot.drive(&mut core);
                core.flush();
            },
        ));
    }

    // Node-level SPMD path: representative-core loop with `CoreSim` reuse.
    {
        let ranks = 19; // two domain-load levels → one reset in the loop
        let per_rank = n / 16;
        let sim = NodeSim::new(SimConfig::new(machine.clone(), ranks));
        results.push(measure("node_spmd_store", per_rank * 2, reps, || {
            // Two distinct domain loads are simulated (18 + 1 cores).
            let report = sim.run_spmd(|rank, core| {
                core.drive_run(AccessRun::store((rank as u64) << 36, per_rank));
            });
            assert!(report.total.write_lines > 0.0);
        }));
    }

    // Policy-space pattern (PR 6): the full 4 replacement × 3 write-policy
    // grid driven through the monomorphised dispatcher, one shared memo
    // (each combination is a distinct `SimKey`, so all twelve simulate).
    // The `policy_dispatch` ratio against the default-only `node_spmd_store`
    // pattern — both sides measured in this run — is the zero-cost gate:
    // per-element throughput across the grid must stay comparable to the
    // paper's LRU + write-allocate monomorphisation, and a collapse means
    // the dispatch stopped compiling out.
    {
        let ranks = 19;
        let per_rank = n / 16;
        let spec = KernelSpec::contiguous(
            RankBase::Shifted { shift: 36, plus: 0 },
            0,
            per_rank,
            AccessKind::Store,
        );
        let combos: Vec<(ReplacementPolicyKind, WritePolicyKind)> = ReplacementPolicyKind::all()
            .into_iter()
            .flat_map(|r| WritePolicyKind::all().into_iter().map(move |w| (r, w)))
            .collect();
        results.push(measure(
            "policy_grid_spmd",
            per_rank * 2 * combos.len() as u64,
            reps,
            || {
                let memo = SimMemo::new();
                for &(r, w) in &combos {
                    let sim = NodeSim::new(
                        SimConfig::new(machine.clone(), ranks)
                            .with_replacement(r)
                            .with_write_policy(w),
                    );
                    let report = sim.run_spmd_memo(&spec, &memo);
                    assert!(report.total.total_bytes() > 0.0);
                }
            },
        ));
    }

    // Two-tenant co-run pattern (PR 8): the private/shared hierarchy split
    // merging two interleaved kernel streams at one shared LLC, including
    // the per-tenant solo baselines the delta reporting runs.  Tracks the
    // cost of the round-robin cursor scheduling and the per-turn LLC stat
    // attribution relative to the plain SPMD path.
    {
        let per = n / 8;
        let shift = RankBase::Shifted { shift: 36, plus: 0 };
        let victim = KernelSpec::contiguous(shift, 0, per, AccessKind::Load);
        let aggressor = KernelSpec::contiguous(shift, 0, per, AccessKind::Store);
        let sim = NodeSim::new(SimConfig::new(machine.clone(), 2));
        results.push(measure("corun_two_tenant", per * 2, reps, || {
            let memo = SimMemo::new();
            let report = sim.run_corun(&[victim.clone(), aggressor.clone()], 64, &memo);
            assert!(report.total.total_bytes() > 0.0);
        }));
    }

    // Probe-scan pattern (PR 9): raw tag-lane scans of fully populated
    // sets at the ICX L2 associativity (20-way), probing lines that are
    // *not resident* — the streaming-eviction hot case, where every probe
    // walks a full set: the scalar loop has no early exit and must
    // compare all 20 tags, while the SIMD path resolves the set in five
    // vector compares.  The 20 KiB tag lane stays L1-resident, so the
    // pattern is bound by the probe compute it isolates, not by streaming
    // tags through L2.  Both sides run the identical workload through the
    // same `SetAssocCache` code; only the `SIMD` const parameter differs
    // (AVX2/chunked movemask compare vs. scalar early-exit scan), so the
    // `probe_scan_simd` in-run ratio is exactly the tag-lane win.
    {
        let lines: u64 = (160 << 10) / 64; // 2560 lines, 128 sets x 20 ways
        let touches = if quick { n } else { 4 * n };
        let mut simd = SetAssocCache::<TrueLru, true>::new(160 << 10, 20);
        let mut scalar = SetAssocCache::<TrueLru, false>::new(160 << 10, 20);
        for line in 0..lines {
            simd.probe_fill(line, false);
            scalar.probe_fill(line, false);
        }
        // Lines `>= lines` alias the same sets but are never resident, so
        // every probe is a full-set miss scan cycling through all sets.
        let probes: Vec<u64> = (0..touches).map(|t| lines + t % lines).collect();
        results.push(measure("probe_scan_scalar", touches, reps, || {
            assert_eq!(scalar.resident_count(&probes), 0);
        }));
        results.push(measure("probe_scan_simd", touches, reps, || {
            assert_eq!(simd.resident_count(&probes), 0);
        }));
    }

    // Differential re-simulation pattern (PR 9): a neighbour-dense sweep —
    // the full rank curve crossed with the SpecI2M MSR switch, every point
    // sharing one `SimMemo`.  The occupancy context and the MSR switch
    // scale counter accounting only, so the differential memo simulates
    // each distinct cache-dynamics identity once and *replays* its
    // recorded trace for every neighbour; the `_off` side runs the same
    // curve with differential re-simulation disabled (every memo miss
    // re-simulates from scratch).  Both sides construct their memo inside
    // the measured closure — the measurement is one cold sweep, and the
    // `sweep_differential` in-run ratio is exactly the replay win.
    {
        let max_ranks = if quick { 18 } else { 72 };
        let per_rank = n / 16;
        let spec = KernelSpec::contiguous(
            RankBase::Shifted { shift: 36, plus: 0 },
            0,
            per_rank,
            AccessKind::Store,
        );
        let points = 2 * max_ranks as u64;
        let run_curve = |memo: &SimMemo| {
            for ranks in 1..=max_ranks {
                for speci2m in [true, false] {
                    let cfg = SimConfig::new(machine.clone(), ranks);
                    let cfg = if speci2m { cfg } else { cfg.without_speci2m() };
                    let report = NodeSim::new(cfg).run_spmd_memo(&spec, memo);
                    assert!(report.total.total_bytes() > 0.0);
                }
            }
        };
        results.push(measure("sweep_differential_off", points, reps, || {
            run_curve(&SimMemo::without_differential());
        }));
        results.push(measure("sweep_differential_on", points, reps, || {
            run_curve(&SimMemo::new());
        }));
    }

    // Serve-daemon pattern (PR 10): a warm daemon answering a concurrent
    // stream of overlapping sweep requests from several clients.  Both
    // sides serve the byte-identical request mix from services whose memos
    // were warmed before timing (a daemon's steady state — the cold
    // evaluation cost is the sweep patterns' business, not this one's).
    // The baseline is the pre-PR10 `serve_unix` shape: one freshly spawned
    // thread per request and every response re-expanded, re-walked and
    // re-rendered (no response cache).  The pooled side pushes the same
    // requests through the sharded MPMC queue into the fixed worker pool,
    // where repeat queries are answered from the bounded response cache.
    // The `serve_throughput` in-run ratio is exactly the front-end win:
    // thread spawn + re-render versus queue hop + payload copy.
    {
        let clients = if quick { 4 } else { 8 };
        let rounds = if quick { 4 } else { 16 };
        let requests: Vec<String> = vec![
            "sweep --machine icx-8360y --grid 1920 --ranks 1..12".into(),
            "sweep --machine icx-8360y --grid 1920 --ranks 1..8".into(),
            "sweep --machine icx-8360y --grid 1920 --ranks 4..12".into(),
            "sweep --machine icx-8360y --grid 1920 --ranks 1..12 --stage speci2m-off".into(),
        ];
        // Served rank points per request, summed over the whole client mix
        // (client `c` starts its round-robin at offset `c`).
        let points_of = |line: &str| -> u64 {
            line.split("--ranks").nth(1).map_or(0, |r| {
                let range: Vec<u64> = r
                    .split_whitespace()
                    .next()
                    .unwrap()
                    .split("..")
                    .map(|n| n.parse().unwrap())
                    .collect();
                range[1] - range[0] + 1
            })
        };
        let nreq = requests.len();
        let total_points: u64 = (0..clients)
            .flat_map(|c| (0..rounds).map(move |i| (c + i) % nreq))
            .map(|idx| points_of(&requests[idx]))
            .sum();
        let expect_payload = |r: Response| match r {
            Response::Payload(p) => assert!(!p.is_empty()),
            other => panic!("sweep request answered with {other:?}"),
        };
        // Thread-per-request baseline on an uncached service.
        let baseline = SweepService::new().without_response_cache();
        results.push(measure(
            "serve_thread_per_client",
            total_points,
            reps,
            || {
                std::thread::scope(|s| {
                    for c in 0..clients {
                        let baseline = &baseline;
                        let requests = &requests;
                        s.spawn(move || {
                            for i in 0..rounds {
                                let line = &requests[(c + i) % requests.len()];
                                // One short-lived server thread per request —
                                // the old accept loop's cost model.
                                std::thread::scope(|conn| {
                                    conn.spawn(move || {
                                        expect_payload(baseline.handle_request(line));
                                    });
                                });
                            }
                        });
                    }
                });
            },
        ));
        // Bounded pool + response cache (the PR 10 front end).  The pool
        // and queue are rebuilt per repetition — their setup is part of
        // the daemon cost being measured; the service stays warm.
        let pooled = Arc::new(SweepService::new());
        let workers = clover_service::default_workers().min(clients);
        results.push(measure("serve_pooled", total_points, reps, || {
            let queue: Arc<ShardedQueue<(usize, mpsc::SyncSender<Response>)>> =
                Arc::new(ShardedQueue::bounded(workers * 2));
            let svc = Arc::clone(&pooled);
            let reqs = requests.clone();
            let pool = WorkerPool::spawn(Arc::clone(&queue), workers, move |(idx, tx)| {
                let _ = tx.send(svc.handle_request(&reqs[idx]));
            });
            std::thread::scope(|s| {
                for c in 0..clients {
                    let queue = Arc::clone(&queue);
                    s.spawn(move || {
                        // One response channel per client, like one
                        // connection's response stream.
                        let (tx, rx) = mpsc::sync_channel(1);
                        for i in 0..rounds {
                            queue
                                .push(((c + i) % nreq, tx.clone()))
                                .expect("queue open while clients run");
                            expect_payload(rx.recv().expect("worker answers"));
                        }
                    });
                }
            });
            queue.close();
            pool.join();
        }));
    }

    // Sweep-level patterns (PR 5): whole curves and plans, each measured
    // twice — once replayed on the PR 4 code path (per-point `ScalingModel`
    // / unmemoized `run_spmd`) and once through the cross-sweep memo +
    // nested engine.  The `elements` of the scaling patterns count rank
    // points; the store-curve patterns count initiated store elements.
    {
        let machine = icelake_sp_8360y();
        let max_ranks = if quick { 18 } else { 72 };

        // fig2 + fig3 both consume the identical full-curve sweep; the PR 4
        // path evaluated it twice, the memoized engine once.
        let pair_points = 2 * max_ranks as u64;
        let model = ScalingModel::new(machine.clone());
        results.push(measure("scaling_curve_pair_pr4", pair_points, reps, || {
            let a = model.sweep(max_ranks, TrafficOptions::original);
            let b = model.sweep(max_ranks, TrafficOptions::original);
            assert_eq!(a.len(), b.len());
        }));
        let engine = ScalingEngine::new(machine.clone(), TINY_GRID);
        results.push(measure(
            "scaling_curve_pair_memo",
            pair_points,
            reps,
            || {
                // A fresh memo per repetition: the measurement is one cold
                // fig2+fig3 regeneration, not a warm-cache replay.
                let memo = SweepMemo::new();
                let a = engine.sweep_range_memo(1..=max_ranks, TrafficOptions::original, &memo);
                let b = engine.sweep_range_memo(1..=max_ranks, TrafficOptions::original, &memo);
                assert_eq!(a.len(), b.len());
            },
        ));

        // A sweep plan with overlapping rank ranges across every stage —
        // the zoomed-range study shape the scenario engine is built for.
        let plan = SweepPlan::new()
            .machine(MachinePreset::IceLakeSp8360y)
            .grid(TINY_GRID)
            .ranks(RankRange::new(1, max_ranks))
            .ranks(RankRange::new(1, max_ranks / 2))
            .ranks(RankRange::new(1, max_ranks / 4))
            .stage(Stage::Original)
            .stage(Stage::SpecI2MOff)
            .stage(Stage::Optimized);
        let scenarios = plan.expand();
        let plan_points: u64 = scenarios.iter().map(|s| s.ranks.len() as u64).sum();
        // Both plan runners are pinned to one worker so the recorded ratio
        // isolates the memo + engine win and stays robust to the host's
        // core count — the property the `--max-regression` speedup gate
        // relies on.  (Thread scaling itself is a tested correctness
        // property of the runner, not part of this trajectory number.)
        results.push(measure("sweep_plan_pr4", plan_points, reps, || {
            // The PR 4 runner: one whole scenario per work item, evaluated
            // by the per-scenario `ScalingModel` path, no memo.
            let artifacts = run_scenarios_with(&scenarios, 1, clover_scenario::evaluate);
            assert_eq!(artifacts.len(), scenarios.len());
        }));
        results.push(measure("sweep_plan_nested", plan_points, reps, || {
            // The PR 5 runner: flattened (scenario, rank point) items, one
            // memo spanning the plan (created fresh per repetition).
            let artifacts = clover_scenario::run_plan(&plan, 1);
            assert_eq!(artifacts.len(), scenarios.len());
        }));

        // The paper's dense store-ratio curve (fig5 at step 1): every rank
        // count from 1 to the full node, one stream, normal stores.
        let curve_step = if quick { 6 } else { 1 };
        let curve_cores: Vec<usize> = (1..=max_ranks).step_by(curve_step).collect();
        let curve_elements: u64 = curve_cores.iter().map(|_| 32 * 1024u64).sum();
        results.push(measure("store_curve_pr4", curve_elements, reps, || {
            for &c in &curve_cores {
                let r = store_ratio(&machine, c, 1, StoreKind::Normal);
                assert!(r > 0.9);
            }
        }));
        results.push(measure("store_curve_memo", curve_elements, reps, || {
            let memo = SimMemo::new();
            for &c in &curve_cores {
                let r = store_ratio_memo(&machine, c, 1, StoreKind::Normal, &memo);
                assert!(r > 0.9);
            }
        }));
    }

    let ratio = |a: &str, b: &str| -> f64 {
        let get = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.elements_per_sec)
                .unwrap_or(f64::NAN)
        };
        get(b) / get(a)
    };
    let speedups = vec![
        Speedup {
            name: "store_sweep".to_string(),
            factor: ratio("store_sweep_scalar", "store_sweep_batched"),
        },
        Speedup {
            name: "load_sweep".to_string(),
            factor: ratio("load_sweep_scalar", "load_sweep_batched"),
        },
        Speedup {
            name: "scaling_curve_72".to_string(),
            factor: ratio("scaling_curve_pair_pr4", "scaling_curve_pair_memo"),
        },
        Speedup {
            name: "sweep_plan_nested".to_string(),
            factor: ratio("sweep_plan_pr4", "sweep_plan_nested"),
        },
        Speedup {
            name: "policy_dispatch".to_string(),
            factor: ratio("node_spmd_store", "policy_grid_spmd"),
        },
        Speedup {
            name: "probe_scan_simd".to_string(),
            factor: ratio("probe_scan_scalar", "probe_scan_simd"),
        },
        Speedup {
            name: "sweep_differential".to_string(),
            factor: ratio("sweep_differential_off", "sweep_differential_on"),
        },
        Speedup {
            name: "serve_throughput".to_string(),
            factor: ratio("serve_thread_per_client", "serve_pooled"),
        },
    ];
    // The store-curve pair is tracked as plain measurements: its memo win
    // is the within-curve context dedup (~140 -> ~75 representative sims on
    // the dense 72-point ICX curve, ~1.7-1.9x wall clock) and is reported
    // by the result rows themselves rather than a headline speedup.

    BenchReport {
        schema: 1,
        label: label.to_string(),
        quick,
        results,
        speedups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_has_all_patterns_and_speedups() {
        let report = run_perf_bench(true, "test");
        let names: Vec<&str> = report.results.iter().map(|r| r.name).collect();
        for expected in [
            "store_sweep_scalar",
            "store_sweep_batched",
            "load_sweep_scalar",
            "load_sweep_batched",
            "row_sweep_batched",
            "copy_interleaved_batched",
            "stencil_hotspot_batched",
            "node_spmd_store",
            "policy_grid_spmd",
            "corun_two_tenant",
            "probe_scan_scalar",
            "probe_scan_simd",
            "sweep_differential_off",
            "sweep_differential_on",
            "serve_thread_per_client",
            "serve_pooled",
            "scaling_curve_pair_pr4",
            "scaling_curve_pair_memo",
            "sweep_plan_pr4",
            "sweep_plan_nested",
            "store_curve_pr4",
            "store_curve_memo",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        for r in &report.results {
            assert!(r.elements > 0 && r.elements_per_sec > 0.0, "{}", r.name);
        }
        for name in [
            "store_sweep",
            "load_sweep",
            "scaling_curve_72",
            "sweep_plan_nested",
            "policy_dispatch",
            "probe_scan_simd",
            "sweep_differential",
            "serve_throughput",
        ] {
            assert!(report.speedup(name).unwrap() > 0.0, "{name}");
        }
        assert!(report.throughput("store_sweep_batched").unwrap() > 0.0);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let report = BenchReport {
            schema: 1,
            label: "unit".into(),
            quick: true,
            results: vec![BenchResult {
                name: "store_sweep_scalar",
                elements: 100,
                reps: 3,
                best_secs: 0.5,
                elements_per_sec: 200.0,
            }],
            speedups: vec![Speedup {
                name: "store_sweep".to_string(),
                factor: 3.5,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\":1"));
        assert!(json.contains("\"label\":\"unit\""));
        assert!(json.contains("\"unit\":\"elements/sec\""));
        assert!(json.contains("\"name\":\"store_sweep_scalar\""));
        assert!(json.contains("\"factor\":3.500"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let text = report.to_text();
        assert!(text.contains("store_sweep_scalar"));
        assert!(text.contains("3.50x"));
    }

    #[test]
    fn speedups_are_finite_and_positive() {
        // The absolute 3× acceptance bar is against the *pre-refactor*
        // (PR 3) scalar path and is recorded machine-matched in
        // `BENCH_PR4.json` vs `BENCH_PR3.json`; asserting any wall-clock
        // ratio here would tie a tier-1 test to the load of whatever
        // machine runs it.  Only the structural property is gated: the
        // ratios exist and are well-formed numbers.
        let report = run_perf_bench(true, "test");
        for name in [
            "store_sweep",
            "load_sweep",
            "scaling_curve_72",
            "sweep_plan_nested",
            "policy_dispatch",
            "probe_scan_simd",
            "sweep_differential",
            "serve_throughput",
        ] {
            let s = report.speedup(name).unwrap();
            assert!(s.is_finite() && s > 0.0, "{name}: {s}");
        }
    }

    #[test]
    fn regression_gate_flags_only_real_regressions() {
        let report = BenchReport {
            schema: 1,
            label: "now".into(),
            quick: false,
            results: vec![
                BenchResult {
                    name: "store_sweep_batched",
                    elements: 100,
                    reps: 5,
                    best_secs: 1.0,
                    elements_per_sec: 40.0, // 0.4x of baseline: a regression
                },
                BenchResult {
                    name: "load_sweep_batched",
                    elements: 100,
                    reps: 5,
                    best_secs: 1.0,
                    elements_per_sec: 95.0, // 0.95x: within tolerance
                },
                BenchResult {
                    name: "only_in_current",
                    elements: 100,
                    reps: 5,
                    best_secs: 1.0,
                    elements_per_sec: 1.0, // no baseline entry: ignored
                },
            ],
            speedups: vec![
                Speedup {
                    name: "scaling_curve_72".into(),
                    factor: 0.8, // collapsed from the recorded 8.8x
                },
                Speedup {
                    name: "store_sweep".into(),
                    factor: 1.9, // matches the record
                },
            ],
        };
        let baseline = BaselineReport {
            label: "PR5".into(),
            quick: Some(false),
            throughputs: vec![
                ("store_sweep_batched".into(), 100.0),
                ("load_sweep_batched".into(), 100.0),
                ("only_in_baseline".into(), 100.0),
            ],
            speedups: vec![
                ("scaling_curve_72".into(), 8.8),
                ("store_sweep".into(), 2.0),
            ],
        };
        let flagged = report.regressions(&baseline, 50.0);
        assert_eq!(flagged.len(), 2);
        assert_eq!(flagged[0].name, "store_sweep_batched");
        assert!((flagged[0].factor - 0.4).abs() < 1e-9);
        // The collapsed in-run speedup is caught as well (0.8 / 8.8 ≈ 0.09).
        assert_eq!(flagged[1].name, "scaling_curve_72_speedup");
        assert!((flagged[1].factor - 0.8 / 8.8).abs() < 1e-9);
        // A 10% threshold flags the 0.95x throughput and the 0.95x speedup.
        assert_eq!(report.regressions(&baseline, 4.0).len(), 4);
        // A permissive threshold still flags the collapsed speedup.
        let permissive = report.regressions(&baseline, 90.0);
        assert_eq!(permissive.len(), 1);
        assert_eq!(permissive[0].name, "scaling_curve_72_speedup");

        // Mismatched sizing (quick run vs full-sizing record): throughput
        // comparisons are skipped — fixed costs would flag phantom
        // regressions — but the sizing-robust speedup ratios still gate.
        let mut quick_report = report.clone();
        quick_report.quick = true;
        let flagged = quick_report.regressions(&baseline, 50.0);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].name, "scaling_curve_72_speedup");
    }

    #[test]
    fn missing_quick_marker_still_gates_throughputs() {
        // Regression test: a baseline record predating the `quick` flag
        // (`quick == None`) used to silently skip *every* throughput
        // comparison — the gate would pass no matter how far throughput
        // fell.  A missing marker now means "compare and warn", while a
        // *known* mismatch still skips.
        let report = BenchReport {
            schema: 1,
            label: "now".into(),
            quick: false,
            results: vec![BenchResult {
                name: "store_sweep_batched",
                elements: 100,
                reps: 5,
                best_secs: 1.0,
                elements_per_sec: 40.0, // 0.4x of baseline
            }],
            speedups: vec![],
        };
        let mut baseline = BaselineReport {
            label: "old".into(),
            quick: None,
            throughputs: vec![("store_sweep_batched".into(), 100.0)],
            speedups: vec![],
        };
        let flagged = report.regressions(&baseline, 50.0);
        assert_eq!(flagged.len(), 1, "None-quick baseline must still gate");
        assert_eq!(flagged[0].name, "store_sweep_batched");
        assert!((flagged[0].factor - 0.4).abs() < 1e-9);
        // An explicit mismatch keeps skipping (phantom-regression guard).
        baseline.quick = Some(true);
        assert!(report.regressions(&baseline, 50.0).is_empty());
        baseline.quick = Some(false);
        assert_eq!(report.regressions(&baseline, 50.0).len(), 1);
    }

    #[test]
    fn adversarial_label_cannot_forge_report_fields() {
        // The old parser detected `quick` by substring search over the
        // whole document, so a label *containing* `"quick":true` flipped
        // the flag of a `quick:false` report.  Labels now round-trip as
        // data.  (Built through the library API: the CLI rejects such
        // labels outright, but checked-in JSON is parsed from disk.)
        let hostile = "evil\",\"quick\":true,\"x\":\"";
        let report = BenchReport {
            schema: 1,
            label: hostile.into(),
            quick: false,
            results: vec![BenchResult {
                name: "store_sweep_scalar",
                elements: 100,
                reps: 5,
                best_secs: 1.0,
                elements_per_sec: 30.0,
            }],
            speedups: vec![Speedup {
                name: "back\\slash_and_\"quote\"".into(),
                factor: 2.0,
            }],
        };
        let json = report.to_json();
        // Escaping keeps the document balanced despite the embedded
        // quotes and braces.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let parsed = BaselineReport::parse(&json).unwrap();
        assert_eq!(parsed.label, hostile, "label must round-trip as data");
        assert_eq!(parsed.quick, Some(false), "forged quick flag was honored");
        assert_eq!(parsed.throughput("store_sweep_scalar"), Some(30.0));
        // The hostile speedup name survives unescaped-equal, and no extra
        // rows were forged out of the label.
        assert_eq!(parsed.speedup("back\\slash_and_\"quote\""), Some(2.0));
        assert_eq!(parsed.throughputs.len(), 1);
        assert_eq!(parsed.speedups.len(), 1);

        // A record genuinely missing the field parses as unknown sizing.
        let no_quick = "{\"label\":\"x\",\"results\":[{\"name\":\"a\",\"elements_per_sec\":1.0}]}";
        assert_eq!(BaselineReport::parse(no_quick).unwrap().quick, None);
    }

    #[test]
    fn baseline_parsing_and_comparison_round_trip() {
        let mut report = BenchReport {
            schema: 1,
            label: "PR9".into(),
            quick: false,
            results: vec![
                BenchResult {
                    name: "store_sweep_batched",
                    elements: 100,
                    reps: 5,
                    best_secs: 1.0,
                    elements_per_sec: 90.0,
                },
                BenchResult {
                    name: "store_sweep_scalar",
                    elements: 100,
                    reps: 5,
                    best_secs: 1.0,
                    elements_per_sec: 45.0,
                },
            ],
            speedups: vec![],
        };
        // Parse a baseline out of the exact JSON the harness emits.
        let baseline_json = BenchReport {
            schema: 1,
            label: "PR3".into(),
            quick: false,
            results: vec![BenchResult {
                name: "store_sweep_scalar",
                elements: 100,
                reps: 5,
                best_secs: 1.0,
                elements_per_sec: 30.0,
            }],
            speedups: vec![Speedup {
                name: "scaling_curve_72".into(),
                factor: 8.832,
            }],
        }
        .to_json();
        let baseline = BaselineReport::parse(&baseline_json).unwrap();
        assert_eq!(baseline.label, "PR3");
        assert_eq!(baseline.quick, Some(false));
        assert_eq!(baseline.throughput("store_sweep_scalar"), Some(30.0));
        // Speedup rows parse separately from result rows.
        assert_eq!(baseline.speedup("scaling_curve_72"), Some(8.832));
        assert_eq!(baseline.throughput("scaling_curve_72"), None);

        report.with_baseline(&baseline);
        // Same-name comparison and the batched-vs-pre-refactor-scalar one.
        let same = report.speedup("store_sweep_scalar_vs_PR3").unwrap();
        assert!((same - 1.5).abs() < 1e-9, "{same}");
        let cross = report.speedup("store_sweep_vs_PR3_scalar").unwrap();
        assert!((cross - 3.0).abs() < 1e-9, "{cross}");
    }

    #[test]
    fn baseline_parser_rejects_garbage() {
        assert!(BaselineReport::parse("").is_none());
        assert!(BaselineReport::parse("{\"label\":\"x\"}").is_none());
        assert!(BaselineReport::parse(
            "{\"label\":\"x\",\"results\":[{\"name\":\"a\",\"elements_per_sec\":-1}]}"
        )
        .is_none());
        assert!(BaselineReport::parse(
            "{\"label\":\"x\",\"results\":[{\"name\":\"a\",\"elements_per_sec\":NaN}]}"
        )
        .is_none());
    }
}
