//! Canned sweep plans for the paper's own experiments.
//!
//! Fig. 7 (per-loop code balance, original vs. optimized), Fig. 9 (store
//! ratios on SPR 8470, SNC on/off) and Fig. 10 (store ratios on SPR 8480+)
//! are each the cartesian product of a machine axis and a stage axis — so
//! they are re-expressed here as [`SweepPlan`]s evaluated by the parallel
//! scenario runner.  The assembled artifacts are byte-identical to the
//! sequential generators in the crate root ([`crate::fig7`], [`crate::fig9`],
//! [`crate::fig10`]), which the tier-1 suite verifies along with the golden
//! check — the sweep engine regenerates the paper, it does not approximate
//! it.

use clover_cachesim::SimMemo;
use clover_core::decomp::Decomposition;
use clover_core::{relative_improvement, TrafficModel, TINY_GRID};
use clover_golden::{Artifact, Cell};
use clover_machine::MachinePreset;
use clover_scenario::{
    run_scenario_items_with, run_scenarios_with, RankRange, Scenario, Stage, SweepPlan,
};
use clover_stencil::{cloverleaf_loops, CodeBalance};

/// Experiments that have a canned sweep-plan formulation.
pub const SWEEP_PLAN_EXPERIMENTS: [&str; 3] = ["fig7", "fig9", "fig10"];

/// The canned plan of one experiment; `None` for experiments that are not
/// sweeps.
pub fn canned_sweep_plan(name: &str) -> Option<SweepPlan> {
    match name {
        // One machine, one rank count, two code stages.
        "fig7" => Some(
            SweepPlan::new()
                .machine(MachinePreset::IceLakeSp8360y)
                .grid(TINY_GRID)
                .ranks(RankRange::new(72, 72))
                .stage(Stage::Original)
                .stage(Stage::Optimized),
        ),
        // Two machine configurations (SNC on/off), full-node core axis.
        "fig9" => Some(
            SweepPlan::new()
                .machine(MachinePreset::SapphireRapids8470 { snc: true })
                .machine(MachinePreset::SapphireRapids8470 { snc: false })
                .grid(TINY_GRID)
                .ranks(RankRange::new(1, 104))
                .stage(Stage::Original),
        ),
        // One machine, full-node core axis.
        "fig10" => Some(
            SweepPlan::new()
                .machine(MachinePreset::SapphireRapids8480)
                .grid(TINY_GRID)
                .ranks(RankRange::new(1, 112))
                .stage(Stage::Original),
        ),
        _ => None,
    }
}

/// Run the canned plan of `name` on `jobs` worker threads and assemble the
/// paper artifact.  `None` for experiments without a canned plan.
pub fn run_canned_sweep(name: &str, jobs: usize) -> Option<Artifact> {
    let plan = canned_sweep_plan(name)?;
    let scenarios = plan.expand();
    Some(match name {
        "fig7" => {
            let parts = run_scenarios_with(&scenarios, jobs, loop_balance_scenario);
            assemble_fig7(&parts)
        }
        "fig9" => {
            let parts = run_store_ratio_scenarios(&scenarios, jobs);
            let mut a = crate::store_ratio_columns(
                Artifact::new("fig9", "store ratios on SPR 8470, SNC on vs. off")
                    .column("snc", None)
                    .column("cores", None),
            );
            for part in parts {
                a.rows.extend(part.rows);
            }
            a
        }
        "fig10" => {
            let parts = run_store_ratio_scenarios(&scenarios, jobs);
            let mut a = crate::store_ratio_columns(
                Artifact::new("fig10", "store ratios on SPR 8480+").column("cores", None),
            );
            for part in parts {
                a.rows.extend(part.rows);
            }
            a
        }
        _ => unreachable!("canned plan without an assembler"),
    })
}

/// Per-scenario evaluator of the fig7 plan: the 22 per-loop code balances of
/// one code stage at the scenario's (single) rank count.
fn loop_balance_scenario(scenario: &Scenario) -> Artifact {
    // This evaluator is a single-rank-count table; a wider range in the
    // plan would be silently mislabeled, so fail loudly instead.
    assert_eq!(
        scenario.ranks.start, scenario.ranks.end,
        "loop-balance scenarios evaluate exactly one rank count"
    );
    let machine = scenario.machine.machine();
    let model = TrafficModel::new(machine);
    let ranks = scenario.ranks.end;
    let decomp = Decomposition::new(ranks, scenario.grid, scenario.grid);
    let opts = scenario.stage.options(ranks);
    let mut a = Artifact::new(&scenario.id(), &scenario.title())
        .column("loop", None)
        .column("min", Some("byte/it"))
        .num_column("balance", Some("byte/it"), 2);
    for spec in cloverleaf_loops() {
        let bounds = CodeBalance::from_spec(&spec);
        let t = model.predict_loop(&spec, &opts, &decomp);
        a.push_row(vec![
            spec.name.clone().into(),
            (bounds.min as i64).into(),
            t.code_balance().into(),
        ]);
    }
    a
}

/// Merge the original- and optimized-stage balance tables into the Fig. 7
/// artifact (the stage axis expands innermost, so `parts[0]` is original).
fn assemble_fig7(parts: &[Artifact]) -> Artifact {
    assert_eq!(parts.len(), 2, "fig7 plan expands to two stages");
    let (orig, opt) = (&parts[0], &parts[1]);
    let mut a = Artifact::new(
        "fig7",
        "predicted vs. full-node code balance, original vs. optimized code",
    )
    .column("loop", None)
    .column("prediction_min", Some("byte/it"))
    .num_column("prediction", Some("byte/it"), 2)
    .num_column("original", Some("byte/it"), 2)
    .num_column("optimized", Some("byte/it"), 2);
    let mut improvements = Vec::with_capacity(orig.rows.len());
    for (o, n) in orig.rows.iter().zip(&opt.rows) {
        let original = o[2].as_f64().expect("balance cell");
        let optimized = n[2].as_f64().expect("balance cell");
        improvements.push(relative_improvement(original, optimized));
        a.push_row(vec![
            o[0].clone(),
            o[1].clone(),
            Cell::Num(original),
            Cell::Num(original),
            Cell::Num(optimized),
        ]);
    }
    let average = improvements.iter().sum::<f64>() / improvements.len() as f64;
    let max = improvements.iter().cloned().fold(0.0, f64::max);
    a.push_note(format!(
        "average improvement {:.1}%, max {:.1}%",
        average * 100.0,
        max * 100.0
    ));
    a
}

/// SNC label column of a store-ratio scenario (the 8470 plans carry one).
fn store_ratio_label(scenario: &Scenario) -> Option<&'static str> {
    match scenario.machine {
        MachinePreset::SapphireRapids8470 { snc } => Some(if snc { "on" } else { "off" }),
        _ => None,
    }
}

/// Guard the store-ratio scenario invariants.  The store microbenchmark has
/// no CloverLeaf code stage; a plan asking for another stage would be
/// silently ignored, so fail loudly instead.  (The grid axis is genuinely
/// meaningless here: the kernels stream fixed arrays regardless of the
/// scenario grid.)
fn store_ratio_guard(scenario: &Scenario) {
    assert_eq!(
        scenario.stage,
        Stage::Original,
        "store-ratio scenarios have no code-stage axis"
    );
}

/// Columns-only artifact of a store-ratio scenario.
fn store_ratio_artifact(scenario: &Scenario) -> Artifact {
    let mut a = Artifact::new(&scenario.id(), &scenario.title());
    if store_ratio_label(scenario).is_some() {
        a = a.column("snc", None);
    }
    crate::store_ratio_columns(a.column("cores", None))
}

/// Per-scenario evaluator of the fig9/fig10 plans: the store-ratio table of
/// one machine configuration over its core axis (8-core steps, as in the
/// paper), with the SNC label column for the 8470.  Kept as the reference
/// the row-flattened runner is tested against.
#[cfg_attr(not(test), allow(dead_code))]
fn store_ratio_scenario(scenario: &Scenario) -> Artifact {
    store_ratio_guard(scenario);
    let machine = scenario.machine.machine();
    let memo = SimMemo::new();
    let mut a = store_ratio_artifact(scenario);
    crate::store_ratio_figure(
        &mut a,
        &machine,
        scenario.ranks.iter(),
        8,
        store_ratio_label(scenario),
        &memo,
    );
    a
}

/// Run store-ratio scenarios nested-parallel: the work unit is one *row*
/// (one core count, six store-ratio simulations), not a whole scenario, so
/// a single long curve spreads across every worker; one [`SimMemo`] spans
/// the whole plan, so overlapping domain-load contexts across rows and
/// scenarios are simulated exactly once.  Byte-identical to mapping
/// [`store_ratio_scenario`] over the scenarios (tier-1 tested).
fn run_store_ratio_scenarios(scenarios: &[Scenario], jobs: usize) -> Vec<Artifact> {
    scenarios.iter().for_each(store_ratio_guard);
    // Hoist the materialised machine and core axis per scenario: a row item
    // must not rebuild them (the plans hold a handful of scenarios, so the
    // per-item lookup is a short scan, like `run_plan`'s engine list).
    let prepared: Vec<(&Scenario, clover_machine::Machine, Vec<usize>)> = scenarios
        .iter()
        .map(|s| {
            (
                s,
                s.machine.machine(),
                crate::store_ratio_core_axis(s.ranks.iter(), 8),
            )
        })
        .collect();
    let prepared_for = |s: &Scenario| {
        prepared
            .iter()
            .find(|(sc, _, _)| *sc == s)
            .map(|(_, machine, axis)| (machine, axis))
            .expect("every scenario was prepared above")
    };
    let memo = SimMemo::new();
    run_scenario_items_with(
        scenarios,
        jobs,
        |s| prepared_for(s).1.len(),
        |s, i| {
            let (machine, axis) = prepared_for(s);
            crate::store_ratio_row(machine, axis[i], store_ratio_label(s), &memo)
        },
        |s, rows| {
            let mut a = store_ratio_artifact(s);
            for row in rows {
                a.push_row(row);
            }
            a
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_plans_exist_exactly_for_the_sweep_experiments() {
        for name in SWEEP_PLAN_EXPERIMENTS {
            assert!(canned_sweep_plan(name).is_some(), "{name}");
        }
        assert!(canned_sweep_plan("fig2").is_none());
        assert!(run_canned_sweep("fig2", 2).is_none());
    }

    #[test]
    fn canned_plans_match_the_sequential_generators_byte_for_byte() {
        for name in SWEEP_PLAN_EXPERIMENTS {
            let direct = crate::run_artifact(name).unwrap();
            for jobs in [1, 4] {
                let swept = run_canned_sweep(name, jobs).unwrap();
                assert_eq!(direct.to_csv(), swept.to_csv(), "{name} jobs={jobs}");
                assert_eq!(direct.to_json(), swept.to_json(), "{name} jobs={jobs}");
            }
        }
    }

    #[test]
    fn flattened_store_ratio_rows_match_the_per_scenario_evaluator() {
        // Small plan: two SNC configurations, short core axes — the
        // row-level fan-out with the shared memo must reproduce the plain
        // per-scenario evaluator byte for byte at any job count.
        let plan = SweepPlan::new()
            .machine(MachinePreset::SapphireRapids8470 { snc: true })
            .machine(MachinePreset::SapphireRapids8470 { snc: false })
            .grid(TINY_GRID)
            .ranks(RankRange::new(1, 17))
            .stage(Stage::Original);
        let scenarios = plan.expand();
        let reference: Vec<Artifact> = scenarios.iter().map(store_ratio_scenario).collect();
        for jobs in [1, 3] {
            let flattened = run_store_ratio_scenarios(&scenarios, jobs);
            assert_eq!(reference, flattened, "jobs={jobs}");
        }
    }

    #[test]
    fn fig9_plan_expands_snc_on_before_off() {
        let scenarios = canned_sweep_plan("fig9").unwrap().expand();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(
            scenarios[0].machine,
            MachinePreset::SapphireRapids8470 { snc: true }
        );
        assert_eq!(
            scenarios[1].machine,
            MachinePreset::SapphireRapids8470 { snc: false }
        );
    }
}
