//! Regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! figures <experiment> [...]     # e.g. figures table1 fig2 fig5
//! figures all                    # everything (takes a few minutes)
//! figures list                   # show the available experiment names
//! ```
//!
//! Output is CSV-like text on stdout, one block per experiment.

use std::io::{ErrorKind, Write};

use clover_bench::{run_experiment, EXPERIMENTS};

/// Write to stdout, exiting quietly if the reader went away (`figures all |
/// head` must not panic with a broken-pipe backtrace).
fn emit(out: &mut impl Write, text: std::fmt::Arguments<'_>) {
    if let Err(e) = out.write_fmt(text) {
        if e.kind() == ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        panic!("failed printing to stdout: {e}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if args.is_empty() || args[0] == "list" {
        emit(&mut out, format_args!("available experiments:\n"));
        for e in EXPERIMENTS {
            emit(&mut out, format_args!("  {e}\n"));
        }
        return;
    }
    let requested: Vec<&str> = if args[0] == "all" {
        EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in requested {
        match run_experiment(name) {
            Some(output) => {
                emit(&mut out, format_args!("==== {name} ====\n{output}\n"));
            }
            None => {
                eprintln!("unknown experiment '{name}'; run `figures list`");
                std::process::exit(1);
            }
        }
    }
}
