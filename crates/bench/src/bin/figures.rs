//! Regenerate the paper's tables and figures, optionally checking them
//! against the digitised paper data.
//!
//! Usage:
//!
//! ```text
//! figures <experiment> [...]     # e.g. figures table1 fig2 fig5
//! figures all                    # everything (takes a few seconds)
//! figures list                   # show the available experiment names
//! figures --check all            # diff against the paper; non-zero exit
//!                                # when any cell is out of tolerance
//! figures --json fig5 fig6       # machine-readable artifact dump
//! figures --delta-table all      # markdown delta table (EXPERIMENTS.md)
//! figures --perturb 10 --check all   # sanity check of the harness: a 10%
//!                                    # model error must make --check fail
//! figures sweep --machine icx-8360y --grid 4000 --ranks 1..72 \
//!     --stage all [--replacement lru|plru|srrip|random|all] \
//!     [--write-policy allocate|no-allocate|non-temporal|all] \
//!     [--layer-condition ok|broken|all] \
//!     [--aggressor none|stream|stream-heavy|thrash|all] \
//!     [--interleave <lines>] [--jobs N] [--json] [--store <path>]
//!                                # scenario sweep engine: cartesian
//!                                # machine × grid × ranks × stage
//!                                # (× cache-policy × tenancy axes) plan on
//!                                # N worker threads; the policy axes
//!                                # default to the paper's LRU +
//!                                # write-allocate + fulfilled layer
//!                                # condition and the tenancy axes to an
//!                                # exclusive node; `--store` warm-loads a
//!                                # persistent memo store first and writes
//!                                # it back after the sweep (stale or
//!                                # corrupt stores are rebuilt);
//!                                # `--store-cap N` compacts the write-back
//!                                # to the N most recently touched entries
//! figures interfere [--json] [<name> ...]
//!                                # canned multi-tenant artifacts from the
//!                                # shared-LLC co-run engine (timestep
//!                                # inflation, LLC occupancy deltas,
//!                                # write-allocate evasion under
//!                                # contention); no golden data, so these
//!                                # stay outside `all`/`--check`
//! figures serve [--store <path>] [--socket <path>] [--workers N]
//!               [--response-cache N] [--store-cap N]
//!                                # long-running sweep daemon: line-based
//!                                # requests (`sweep <flags>`, `stats`,
//!                                # `save`, `ping`, `quit`) over stdin or a
//!                                # unix socket, answered from one warm
//!                                # memo state shared by every client; the
//!                                # socket mode serves any client count
//!                                # from a fixed pool of N workers
//!                                # (default: the host's parallelism),
//!                                # repeat queries hit a bounded response
//!                                # cache (default 128 payloads) and
//!                                # `save` compacts the store to the
//!                                # `--store-cap` most recent entries
//! figures bench [--json] [--quick] [--label <name>]
//!               [--baseline <BENCH_*.json> [--max-regression <pct>]]
//!                                # perf-trajectory harness: simulator
//!                                # throughput per pattern (elements/sec);
//!                                # `--json > BENCH_<PR>.json` records a
//!                                # baseline, `--quick` is the CI sizing,
//!                                # `--max-regression` exits 1 when any
//!                                # same-name pattern slows past the
//!                                # threshold vs the baseline
//! ```
//!
//! Experiment names must be unique, known, and not mixed with `all`.
//! Exit codes: 0 success, 1 out-of-tolerance cells, 2 usage errors.

use std::io::{ErrorKind, Write};
use std::process::ExitCode;

use clover_bench::{
    check_experiment, delta_table, run_artifact, run_interference_artifact, EXPERIMENTS,
    INTERFERENCE_EXPERIMENTS,
};
use clover_cachesim::SimMemo;
use clover_core::SweepMemo;
use clover_golden::check_artifact;
use clover_scenario::{render_block, run_plan_memo, SweepArgs, SweepPlan};
use clover_service::{LoadOutcome, PersistentStore, SweepService};

/// Write to stdout, exiting quietly if the reader went away (`figures all |
/// head` must not panic with a broken-pipe backtrace).
fn emit(out: &mut impl Write, text: std::fmt::Arguments<'_>) {
    if let Err(e) = out.write_fmt(text) {
        if e.kind() == ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        panic!("failed printing to stdout: {e}");
    }
}

/// Like [`emit`], but survive a broken pipe: returns `false` so the caller
/// can stop printing yet keep computing.  `--check` uses this because its
/// exit code is load-bearing — `figures --check all | head` must still exit
/// 1 when a later artifact is out of tolerance.
fn try_emit(out: &mut impl Write, text: std::fmt::Arguments<'_>) -> bool {
    match out.write_fmt(text) {
        Ok(()) => true,
        Err(e) if e.kind() == ErrorKind::BrokenPipe => false,
        Err(e) => panic!("failed printing to stdout: {e}"),
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("figures: {message}");
    eprintln!("run `figures list` for the available experiments");
    ExitCode::from(2)
}

fn sweep_usage_error(message: &str) -> ExitCode {
    eprintln!("figures sweep: {message}");
    eprintln!(
        "usage: figures sweep --machine <name> --ranks <A..B> \
         [--grid <cells>] [--stage original|speci2m-off|optimized|all] \
         [--replacement lru|plru|srrip|random|all] \
         [--write-policy allocate|no-allocate|non-temporal|all] \
         [--layer-condition ok|broken|all] \
         [--aggressor none|stream|stream-heavy|thrash|all] \
         [--interleave <lines>] \
         [--jobs <n>] [--json] [--store <path>] [--store-cap <n>]  \
         (axis flags repeat to span a cartesian plan)"
    );
    ExitCode::from(2)
}

fn serve_usage_error(message: &str) -> ExitCode {
    eprintln!("figures serve: {message}");
    eprintln!(
        "usage: figures serve [--store <path>] [--socket <path>] \
         [--workers <n>] [--response-cache <n>] [--store-cap <n>]"
    );
    ExitCode::from(2)
}

#[derive(Debug, Default)]
struct Options {
    check: bool,
    json: bool,
    delta: bool,
    perturb: Option<f64>,
    names: Vec<String>,
}

/// Split flags from experiment names; flags may appear anywhere.
fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--json" => opts.json = true,
            "--delta-table" => opts.delta = true,
            "--perturb" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--perturb needs a percentage argument".to_string())?;
                let pct: f64 = value
                    .parse()
                    .map_err(|_| format!("--perturb: '{value}' is not a number"))?;
                // NaN/inf used to parse fine and silently wreck every
                // artifact; a percentage of -100 or below flips the scale
                // factor to zero or negative, which is equally nonsense.
                if !pct.is_finite() {
                    return Err(format!("--perturb: '{value}' is not a finite percentage"));
                }
                let factor = 1.0 + pct / 100.0;
                if factor <= 0.0 {
                    return Err(format!(
                        "--perturb: {pct}% gives the non-positive scale factor {factor}; \
                         use a percentage above -100"
                    ));
                }
                opts.perturb = Some(factor);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag '{flag}'"));
            }
            name => opts.names.push(name.to_string()),
        }
    }
    if opts.json && (opts.check || opts.delta) {
        return Err("--json cannot be combined with --check or --delta-table".to_string());
    }
    if opts.delta && (opts.check || opts.perturb.is_some()) {
        // The delta table documents the *committed* model; silently
        // ignoring --check/--perturb here would mislead.
        return Err("--delta-table cannot be combined with --check or --perturb".to_string());
    }
    Ok(opts)
}

/// Resolve the positional names to a validated experiment list.
fn resolve_names(names: &[String]) -> Result<Vec<&'static str>, String> {
    if names.iter().any(|n| n == "all") {
        if names.len() > 1 {
            return Err(
                "'all' already includes every experiment; drop the explicit names".to_string(),
            );
        }
        return Ok(EXPERIMENTS.to_vec());
    }
    let mut resolved = Vec::new();
    let mut unknown = Vec::new();
    for name in names {
        match EXPERIMENTS.iter().find(|e| *e == name) {
            Some(e) => {
                if resolved.contains(e) {
                    return Err(format!("duplicate experiment name '{name}'"));
                }
                resolved.push(*e);
            }
            None => unknown.push(name.as_str()),
        }
    }
    if !unknown.is_empty() {
        return Err(format!("unknown experiment(s): {}", unknown.join(", ")));
    }
    Ok(resolved)
}

/// Options of the `figures sweep` subcommand.
#[derive(Debug)]
struct SweepOptions {
    plan: SweepPlan,
    jobs: usize,
    json: bool,
    store: Option<String>,
    store_cap: Option<usize>,
}

/// Extract a repeat-checked `--store <path>` / `--socket <path>` style
/// flag from `args`, returning the remaining arguments and the value.
fn extract_path_flag(args: &[String], flag: &str) -> Result<(Vec<String>, Option<String>), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut value: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == flag {
            let path = iter
                .next()
                .ok_or_else(|| format!("{flag} needs a file path"))?;
            if value.is_some() {
                return Err(format!("{flag} given twice"));
            }
            value = Some(path.clone());
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, value))
}

/// Extract a repeat-checked `--workers <n>` style positive-count flag
/// from `args`, returning the remaining arguments and the value.  Zero,
/// non-numeric, missing and duplicate values are usage errors naming the
/// flag.
fn extract_count_flag(args: &[String], flag: &str) -> Result<(Vec<String>, Option<usize>), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut value: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == flag {
            let raw = iter
                .next()
                .ok_or_else(|| format!("{flag} needs a positive count"))?;
            if value.is_some() {
                return Err(format!("{flag} given twice"));
            }
            let n: usize = raw
                .parse()
                .map_err(|_| format!("{flag}: '{raw}' is not a count"))?;
            if n == 0 {
                return Err(format!("{flag} must be at least 1"));
            }
            value = Some(n);
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, value))
}

/// Parse the arguments after the `sweep` keyword.  The axis grammar lives
/// in `clover_scenario::SweepArgs` (shared with the `figures serve`
/// daemon); the CLI adds only the `--store <path>` persistence flag and
/// its `--store-cap <n>` compaction bound.
fn parse_sweep_args(args: &[String]) -> Result<SweepOptions, String> {
    let (rest, store) = extract_path_flag(args, "--store")?;
    let (rest, store_cap) = extract_count_flag(&rest, "--store-cap")?;
    if store_cap.is_some() && store.is_none() {
        return Err("--store-cap requires --store".to_string());
    }
    let parsed = SweepArgs::parse(&rest)?;
    Ok(SweepOptions {
        plan: parsed.plan,
        jobs: parsed.jobs,
        json: parsed.json,
        store,
        store_cap,
    })
}

fn interfere_usage_error(message: &str) -> ExitCode {
    eprintln!("figures interfere: {message}");
    eprintln!(
        "usage: figures interfere [--json] [{}]  (no names runs all three)",
        INTERFERENCE_EXPERIMENTS.join(" | ")
    );
    ExitCode::from(2)
}

/// Parse the arguments after the `interfere` keyword: an optional `--json`
/// plus experiment names (empty means all three).
fn parse_interfere_args(args: &[String]) -> Result<(bool, Vec<&'static str>), String> {
    let mut json = false;
    let mut names: Vec<&'static str> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag '{flag}'")),
            name => match INTERFERENCE_EXPERIMENTS.iter().find(|e| **e == name) {
                None => {
                    return Err(format!(
                        "unknown interference experiment '{name}' (known: {})",
                        INTERFERENCE_EXPERIMENTS.join(", ")
                    ))
                }
                Some(e) => {
                    if names.contains(e) {
                        return Err(format!("duplicate experiment name '{name}'"));
                    }
                    names.push(e);
                }
            },
        }
    }
    if names.is_empty() {
        names = INTERFERENCE_EXPERIMENTS.to_vec();
    }
    Ok((json, names))
}

/// Run the `figures interfere` subcommand.
fn interfere_main(args: &[String], out: &mut impl Write) -> ExitCode {
    let (json, names) = match parse_interfere_args(args) {
        Ok(parsed) => parsed,
        Err(message) => return interfere_usage_error(&message),
    };
    let mut json_blocks = Vec::new();
    for name in names {
        let artifact = run_interference_artifact(name).expect("validated name");
        if json {
            json_blocks.push(artifact.to_json());
        } else {
            emit(out, format_args!("{}", render_block(&artifact)));
        }
    }
    if json {
        emit(out, format_args!("[{}]\n", json_blocks.join(",")));
    }
    ExitCode::SUCCESS
}

fn bench_usage_error(message: &str) -> ExitCode {
    eprintln!("figures bench: {message}");
    eprintln!(
        "usage: figures bench [--json] [--quick] [--label <name>] \
         [--baseline <BENCH_*.json>] [--max-regression <pct>]"
    );
    ExitCode::from(2)
}

/// Options of the `figures bench` subcommand.
#[derive(Debug, PartialEq)]
struct BenchOptions {
    json: bool,
    quick: bool,
    label: String,
    baseline: Option<String>,
    max_regression: Option<f64>,
}

/// Parse the arguments after the `bench` keyword.
fn parse_bench_args(args: &[String]) -> Result<BenchOptions, String> {
    let mut json = false;
    let mut quick = false;
    let mut label: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut max_regression: Option<f64> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--quick" => quick = true,
            "--label" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--label needs a name".to_string())?;
                if label.is_some() {
                    return Err("--label given twice".to_string());
                }
                if value.is_empty() || !value.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')
                {
                    // The label lands inside hand-rendered JSON; keep it to
                    // characters that cannot break the quoting.
                    return Err(format!(
                        "--label: '{value}' must be non-empty alphanumeric/dashes"
                    ));
                }
                label = Some(value.clone());
            }
            "--baseline" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--baseline needs a BENCH_*.json path".to_string())?;
                if baseline.is_some() {
                    return Err("--baseline given twice".to_string());
                }
                baseline = Some(value.clone());
            }
            "--max-regression" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--max-regression needs a percentage".to_string())?;
                if max_regression.is_some() {
                    return Err("--max-regression given twice".to_string());
                }
                let pct: f64 = value
                    .parse()
                    .map_err(|_| format!("--max-regression: '{value}' is not a number"))?;
                if !pct.is_finite() || !(0.0..100.0).contains(&pct) {
                    return Err(format!(
                        "--max-regression: {pct} must be a percentage in [0, 100)"
                    ));
                }
                max_regression = Some(pct);
            }
            other => return Err(format!("bench: unexpected argument '{other}'")),
        }
    }
    if max_regression.is_some() && baseline.is_none() {
        return Err("--max-regression requires --baseline".to_string());
    }
    Ok(BenchOptions {
        json,
        quick,
        label: label.unwrap_or_else(|| "current".to_string()),
        baseline,
        max_regression,
    })
}

/// Run the `figures bench` subcommand.
fn bench_main(args: &[String], out: &mut impl Write) -> ExitCode {
    let opts = match parse_bench_args(args) {
        Ok(opts) => opts,
        Err(message) => return bench_usage_error(&message),
    };
    // Read and validate the baseline before the (slow) measurements run.
    let baseline = match &opts.baseline {
        None => None,
        Some(path) => match std::fs::read_to_string(path) {
            Err(e) => return bench_usage_error(&format!("--baseline: cannot read {path}: {e}")),
            Ok(text) => match clover_bench::perf::BaselineReport::parse(&text) {
                None => {
                    return bench_usage_error(&format!(
                        "--baseline: {path} is not a bench report (expected the \
                         figures bench --json format)"
                    ))
                }
                Some(b) => Some(b),
            },
        },
    };
    if let Some(baseline) = &baseline {
        // A pre-PR7 baseline without the field still gates throughput
        // (missing `quick` is treated as comparable), but the comparison
        // may mix sizings — say so instead of silently weakening the gate.
        if baseline.quick.is_none() {
            eprintln!(
                "figures bench: warning: baseline '{}' has no quick/full marker; \
                 comparing throughput anyway (sizings may differ)",
                baseline.label
            );
        }
    }
    let mut report = clover_bench::run_perf_bench(opts.quick, &opts.label);
    if let Some(baseline) = &baseline {
        report.with_baseline(baseline);
    }
    if opts.json {
        emit(out, format_args!("{}", report.to_json()));
    } else {
        emit(out, format_args!("{}", report.to_text()));
    }
    if let (Some(max_pct), Some(baseline)) = (opts.max_regression, &baseline) {
        let regressions = report.regressions(baseline, max_pct);
        if !regressions.is_empty() {
            for r in &regressions {
                eprintln!(
                    "figures bench: {} regressed to {:.2}x of {} (limit {:.0}%)",
                    r.name, r.factor, baseline.label, max_pct
                );
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Run the `figures sweep` subcommand.
fn sweep_main(args: &[String], out: &mut impl Write) -> ExitCode {
    let opts = match parse_sweep_args(args) {
        Ok(opts) => opts,
        Err(message) => return sweep_usage_error(&message),
    };
    // With `--store` the memo outlives the process: warm-load before the
    // sweep, write back after.  The store only changes *when* points are
    // evaluated, never their values, so stdout stays byte-identical to a
    // storeless run.
    let store = opts.store.as_deref().map(PersistentStore::new);
    let memo = SweepMemo::new();
    let sim = SimMemo::new();
    if let Some(store) = &store {
        match store.warm_load(&sim, &memo) {
            LoadOutcome::Warm(n) => {
                eprintln!(
                    "figures sweep: store {}: {n} entries warm",
                    store.path().display()
                );
            }
            LoadOutcome::ColdMissing => {}
            LoadOutcome::ColdStale => eprintln!(
                "figures sweep: store {}: model hash changed, rebuilding",
                store.path().display()
            ),
            LoadOutcome::ColdCorrupt => eprintln!(
                "figures sweep: store {}: unreadable or truncated, rebuilding",
                store.path().display()
            ),
        }
    }
    let artifacts = run_plan_memo(&opts.plan, opts.jobs, &memo);
    if opts.json {
        let blocks: Vec<String> = artifacts.iter().map(|a| a.to_json()).collect();
        emit(out, format_args!("[{}]\n", blocks.join(",")));
    } else {
        for artifact in &artifacts {
            emit(out, format_args!("{}", render_block(artifact)));
        }
    }
    if let Some(store) = &store {
        let (hits, misses) = memo.stats();
        let rate = if hits + misses > 0 {
            100.0 * hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        match store.save_capped(&sim, &memo, opts.store_cap.unwrap_or(usize::MAX)) {
            Ok(report) => {
                if report.evicted > 0 {
                    eprintln!(
                        "figures sweep: store {}: {} least-recently-used entries compacted away",
                        store.path().display(),
                        report.evicted
                    );
                }
                eprintln!(
                    "figures sweep: store {}: {} entries saved (memo hit rate {rate:.1}%)",
                    store.path().display(),
                    report.written
                );
            }
            Err(e) => {
                eprintln!(
                    "figures sweep: store {}: save failed: {e}",
                    store.path().display()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Run the `figures serve` subcommand: the sweep daemon over stdin (the
/// default) or a unix socket (`--socket <path>`), optionally backed by a
/// persistent store (`--store <path>`, compacted to `--store-cap`
/// entries on save).  The socket mode serves every client from a fixed
/// pool of `--workers` threads; repeat queries are answered from a
/// bounded response cache (`--response-cache`, default
/// [`clover_service::DEFAULT_RESPONSE_CACHE_ENTRIES`]).
fn serve_main(args: &[String]) -> ExitCode {
    let (rest, store_path) = match extract_path_flag(args, "--store") {
        Ok(split) => split,
        Err(message) => return serve_usage_error(&message),
    };
    let (rest, socket) = match extract_path_flag(&rest, "--socket") {
        Ok(split) => split,
        Err(message) => return serve_usage_error(&message),
    };
    let (rest, workers) = match extract_count_flag(&rest, "--workers") {
        Ok(split) => split,
        Err(message) => return serve_usage_error(&message),
    };
    let (rest, response_cache) = match extract_count_flag(&rest, "--response-cache") {
        Ok(split) => split,
        Err(message) => return serve_usage_error(&message),
    };
    let (rest, store_cap) = match extract_count_flag(&rest, "--store-cap") {
        Ok(split) => split,
        Err(message) => return serve_usage_error(&message),
    };
    if let Some(extra) = rest.first() {
        return serve_usage_error(&format!("unexpected argument '{extra}'"));
    }
    if workers.is_some() && socket.is_none() {
        return serve_usage_error("--workers requires --socket (stdin serving is single-client)");
    }
    if store_cap.is_some() && store_path.is_none() {
        return serve_usage_error("--store-cap requires --store");
    }
    let mut service = match store_path {
        None => SweepService::new(),
        Some(path) => {
            let store = PersistentStore::new(&path);
            let (service, outcome) = SweepService::with_store(store);
            match outcome {
                LoadOutcome::Warm(n) => eprintln!("figures serve: store {path}: {n} entries warm"),
                LoadOutcome::ColdMissing => {
                    eprintln!("figures serve: store {path}: starting cold")
                }
                LoadOutcome::ColdStale => {
                    eprintln!("figures serve: store {path}: model hash changed, rebuilding")
                }
                LoadOutcome::ColdCorrupt => {
                    eprintln!("figures serve: store {path}: unreadable or truncated, rebuilding")
                }
            }
            service
        }
    };
    if let Some(cap) = response_cache {
        service = service.with_response_cache(cap);
    }
    if let Some(cap) = store_cap {
        service = service.with_store_cap(cap);
    }
    let result = match socket {
        Some(path) => {
            let workers = workers.unwrap_or_else(clover_service::default_workers);
            // Each in-flight request already fans its plan out over
            // `--jobs` threads; clamp per-request jobs so `workers`
            // concurrent requests cannot oversubscribe the host.
            let host = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let service = service.with_max_jobs((host / workers).max(1));
            eprintln!("figures serve: listening on {path} ({workers} workers)");
            clover_service::serve_unix(
                std::sync::Arc::new(service),
                std::path::Path::new(&path),
                workers,
            )
        }
        None => clover_service::serve_stdin(&service),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("figures serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    if args.first().map(String::as_str) == Some("sweep") {
        return sweep_main(&args[1..], &mut out);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return serve_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench") {
        return bench_main(&args[1..], &mut out);
    }
    if args.first().map(String::as_str) == Some("interfere") {
        return interfere_main(&args[1..], &mut out);
    }

    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => return usage_error(&message),
    };
    let flags_used = opts.check || opts.json || opts.delta || opts.perturb.is_some();
    if opts.names.is_empty() || opts.names[0] == "list" {
        // A flag without names must not silently degrade to `list`/exit 0:
        // `figures --check` (forgotten `all`) would green-light CI while
        // checking nothing.
        if flags_used {
            return usage_error("flags require experiment names (e.g. `--check all`)");
        }
        if opts.names.len() > 1 {
            return usage_error("'list' takes no further names");
        }
        emit(&mut out, format_args!("available experiments:\n"));
        for e in EXPERIMENTS {
            emit(&mut out, format_args!("  {e}\n"));
        }
        return ExitCode::SUCCESS;
    }
    let requested = match resolve_names(&opts.names) {
        Ok(requested) => requested,
        Err(message) => return usage_error(&message),
    };

    if opts.delta {
        // The delta table always spans all 12 artifacts; restricting it
        // would silently produce an incomplete EXPERIMENTS.md section.
        if requested.len() != EXPERIMENTS.len() {
            return usage_error("--delta-table requires 'all'");
        }
        emit(&mut out, format_args!("{}", delta_table()));
        return ExitCode::SUCCESS;
    }

    let mut failed = false;
    let mut pipe_gone = false;
    let mut json_blocks = Vec::new();
    for name in requested {
        if opts.check {
            let report = match opts.perturb {
                None => check_experiment(name).expect("validated name"),
                Some(factor) => {
                    let mut artifact = run_artifact(name).expect("validated name");
                    artifact.perturb(factor);
                    check_artifact(&artifact, clover_golden::golden(name).expect("golden data"))
                }
            };
            failed |= !report.passed();
            if !pipe_gone {
                pipe_gone = !try_emit(&mut out, format_args!("{}", report.render_text(false)));
            }
        } else {
            let mut artifact = run_artifact(name).expect("validated name");
            if let Some(factor) = opts.perturb {
                artifact.perturb(factor);
            }
            if opts.json {
                json_blocks.push(artifact.to_json());
            } else {
                emit(&mut out, format_args!("{}", render_block(&artifact)));
            }
        }
    }
    if opts.json {
        emit(&mut out, format_args!("[{}]\n", json_blocks.join(",")));
    }
    if failed {
        eprintln!("figures: at least one artifact is out of tolerance of the paper data");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_machine::{ReplacementPolicyKind, WritePolicyKind};
    use clover_scenario::{LayerCondition, Stage};

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_and_names_parse_in_any_order() {
        let opts = parse_args(&args(&["fig2", "--check", "table1"])).unwrap();
        assert!(opts.check && !opts.json);
        assert_eq!(opts.names, vec!["fig2", "table1"]);
        let opts = parse_args(&args(&["--perturb", "10", "all"])).unwrap();
        assert_eq!(opts.perturb, Some(1.10));
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(parse_args(&args(&["--bogus"])).is_err());
        assert!(parse_args(&args(&["--perturb"])).is_err());
        assert!(parse_args(&args(&["--perturb", "ten"])).is_err());
        assert!(parse_args(&args(&["--json", "--check", "all"])).is_err());
        assert!(parse_args(&args(&["--delta-table", "--check", "all"])).is_err());
        assert!(parse_args(&args(&["--delta-table", "--perturb", "10", "all"])).is_err());
    }

    #[test]
    fn perturb_rejects_non_finite_and_non_positive_factors() {
        // Regression: NaN/inf parsed successfully and silently wrecked
        // every artifact; -200% produced a negative scale factor.
        for bad in ["NaN", "nan", "inf", "-inf", "infinity", "-100", "-200"] {
            let err = parse_args(&args(&["--perturb", bad, "all"])).unwrap_err();
            assert!(err.contains("--perturb"), "{bad}: {err}");
        }
        let opts = parse_args(&args(&["--perturb", "-50", "all"])).unwrap();
        assert_eq!(opts.perturb, Some(0.5));
        let opts = parse_args(&args(&["--perturb", "10", "all"])).unwrap();
        assert_eq!(opts.perturb, Some(1.10));
    }

    #[test]
    fn sweep_args_build_a_validated_plan() {
        let opts = parse_sweep_args(&args(&[
            "--machine",
            "icx-8360y",
            "--machine",
            "spr-8480plus",
            "--grid",
            "4000",
            "--ranks",
            "1..72",
            "--stage",
            "all",
            "--jobs",
            "4",
        ]))
        .unwrap();
        assert_eq!(opts.plan.len(), 2 * 1 * 1 * 3);
        assert_eq!(opts.jobs, 4);
        assert!(!opts.json);
    }

    #[test]
    fn sweep_store_flag_is_extracted_from_the_axis_grammar() {
        // --store can sit anywhere between axis flags.
        let opts = parse_sweep_args(&args(&[
            "--machine",
            "icx-8360y",
            "--store",
            "/tmp/clover.store",
            "--ranks",
            "1..4",
        ]))
        .unwrap();
        assert_eq!(opts.store.as_deref(), Some("/tmp/clover.store"));
        assert_eq!(opts.plan.len(), 1);
        // Missing value / duplicate flag are usage errors.
        let err = parse_sweep_args(&args(&[
            "--machine",
            "icx-8360y",
            "--ranks",
            "1..4",
            "--store",
        ]))
        .unwrap_err();
        assert!(err.contains("--store"), "{err}");
        let err = parse_sweep_args(&args(&[
            "--machine",
            "icx-8360y",
            "--ranks",
            "1..4",
            "--store",
            "a",
            "--store",
            "b",
        ]))
        .unwrap_err();
        assert!(err.contains("twice"), "{err}");
    }

    #[test]
    fn count_flags_validate_strictly() {
        // Value extracted, remaining args untouched and in order.
        let (rest, v) =
            extract_count_flag(&args(&["--workers", "4", "--json"]), "--workers").unwrap();
        assert_eq!(v, Some(4));
        assert_eq!(rest, args(&["--json"]));
        // Absent flag is fine.
        let (rest, v) = extract_count_flag(&args(&["--json"]), "--workers").unwrap();
        assert_eq!(v, None);
        assert_eq!(rest, args(&["--json"]));
        // Missing value, zero, garbage and duplicates all name the flag.
        for bad in [
            &["--workers"][..],
            &["--workers", "0"],
            &["--workers", "two"],
            &["--workers", "-1"],
            &["--workers", "1", "--workers", "2"],
        ] {
            let err = extract_count_flag(&args(bad), "--workers").unwrap_err();
            assert!(err.contains("--workers"), "{bad:?}: {err}");
        }
        let err = extract_count_flag(&args(&["--workers", "1", "--workers", "2"]), "--workers")
            .unwrap_err();
        assert!(err.contains("twice"), "{err}");
    }

    #[test]
    fn sweep_store_cap_needs_a_store_and_a_positive_count() {
        let opts = parse_sweep_args(&args(&[
            "--machine",
            "icx-8360y",
            "--ranks",
            "1..4",
            "--store",
            "/tmp/clover.store",
            "--store-cap",
            "32",
        ]))
        .unwrap();
        assert_eq!(opts.store_cap, Some(32));
        let err = parse_sweep_args(&args(&[
            "--machine",
            "icx-8360y",
            "--ranks",
            "1..4",
            "--store-cap",
            "32",
        ]))
        .unwrap_err();
        assert!(err.contains("requires --store"), "{err}");
        let err = parse_sweep_args(&args(&[
            "--machine",
            "icx-8360y",
            "--ranks",
            "1..4",
            "--store",
            "s",
            "--store-cap",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("--store-cap"), "{err}");
    }

    #[test]
    fn sweep_defaults_fill_grid_and_stage() {
        let opts =
            parse_sweep_args(&args(&["--machine", "icx-8360y", "--ranks", "1..18"])).unwrap();
        assert_eq!(opts.plan.grids, vec![clover_core::TINY_GRID]);
        assert_eq!(opts.plan.stages, vec![Stage::Original]);
        assert!(opts.jobs >= 1);
    }

    #[test]
    fn sweep_usage_errors_are_caught_before_any_worker_runs() {
        // Unknown machine name, listing the registry.
        let err = parse_sweep_args(&args(&["--machine", "epyc", "--ranks", "1..4"])).unwrap_err();
        assert!(err.contains("unknown machine") && err.contains("icx-8360y"));
        // Empty rank range.
        let err =
            parse_sweep_args(&args(&["--machine", "icx-8360y", "--ranks", "5..4"])).unwrap_err();
        assert!(err.contains("empty rank range"));
        // Rank range beyond the machine's core count.
        let err =
            parse_sweep_args(&args(&["--machine", "icx-8360y", "--ranks", "1..104"])).unwrap_err();
        assert!(err.contains("exceeds"));
        // Zero grid, zero jobs, bad stage, duplicate stage, missing axes.
        assert!(parse_sweep_args(&args(&[
            "--machine",
            "icx-8360y",
            "--ranks",
            "1..4",
            "--grid",
            "0"
        ]))
        .is_err());
        assert!(parse_sweep_args(&args(&[
            "--machine",
            "icx-8360y",
            "--ranks",
            "1..4",
            "--jobs",
            "0"
        ]))
        .is_err());
        assert!(parse_sweep_args(&args(&[
            "--machine",
            "icx-8360y",
            "--ranks",
            "1..4",
            "--stage",
            "turbo"
        ]))
        .is_err());
        assert!(parse_sweep_args(&args(&[
            "--machine",
            "icx-8360y",
            "--ranks",
            "1..4",
            "--stage",
            "all",
            "--stage",
            "original"
        ]))
        .is_err());
        assert!(parse_sweep_args(&args(&["--ranks", "1..4"])).is_err());
        assert!(parse_sweep_args(&args(&["--machine", "icx-8360y"])).is_err());
        assert!(parse_sweep_args(&args(&[
            "--machine",
            "icx-8360y",
            "--ranks",
            "1..4",
            "fig2"
        ]))
        .is_err());
    }

    #[test]
    fn sweep_policy_flags_span_the_plan() {
        let opts = parse_sweep_args(&args(&[
            "--machine",
            "icx-8360y",
            "--ranks",
            "1..4",
            "--replacement",
            "all",
            "--write-policy",
            "no-allocate",
            "--write-policy",
            "non-temporal",
            "--layer-condition",
            "all",
        ]))
        .unwrap();
        assert_eq!(opts.plan.replacements, ReplacementPolicyKind::all());
        assert_eq!(
            opts.plan.write_policies,
            vec![WritePolicyKind::NoAllocate, WritePolicyKind::NonTemporal]
        );
        assert_eq!(opts.plan.layer_conditions, LayerCondition::all());
        assert_eq!(opts.plan.len(), 1 * 1 * 1 * 1 * 4 * 2 * 2);
        // Unset policy axes stay empty (pinned to the defaults on expand).
        let opts = parse_sweep_args(&args(&["--machine", "icx-8360y", "--ranks", "1..4"])).unwrap();
        assert!(opts.plan.replacements.is_empty());
        assert!(opts.plan.write_policies.is_empty());
        assert!(opts.plan.layer_conditions.is_empty());
        assert_eq!(opts.plan.len(), 1);
    }

    #[test]
    fn sweep_policy_flags_reject_unknown_and_duplicate_values() {
        let base = ["--machine", "icx-8360y", "--ranks", "1..4"];
        let with = |extra: &[&str]| {
            let mut v: Vec<&str> = base.to_vec();
            v.extend_from_slice(extra);
            parse_sweep_args(&args(&v))
        };
        // Unknown names are rejected, naming the flag and the registry.
        let err = with(&["--replacement", "fifo"]).unwrap_err();
        assert!(
            err.contains("--replacement") && err.contains("lru"),
            "{err}"
        );
        let err = with(&["--write-policy", "write-back"]).unwrap_err();
        assert!(
            err.contains("--write-policy") && err.contains("allocate"),
            "{err}"
        );
        let err = with(&["--layer-condition", "maybe"]).unwrap_err();
        assert!(err.contains("--layer-condition"), "{err}");
        // Missing values name the flag too.
        assert!(with(&["--replacement"])
            .unwrap_err()
            .contains("--replacement"));
        assert!(with(&["--write-policy"])
            .unwrap_err()
            .contains("--write-policy"));
        assert!(with(&["--layer-condition"])
            .unwrap_err()
            .contains("--layer-condition"));
        // Duplicates (directly or via 'all') are rejected.
        let err = with(&["--replacement", "plru", "--replacement", "plru"]).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = with(&["--replacement", "lru", "--replacement", "all"]).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = with(&["--write-policy", "all", "--write-policy", "allocate"]).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = with(&["--layer-condition", "ok", "--layer-condition", "ok"]).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn bench_args_parse_with_defaults_and_flags() {
        let opts = parse_bench_args(&args(&[])).unwrap();
        assert_eq!(
            opts,
            BenchOptions {
                json: false,
                quick: false,
                label: "current".into(),
                baseline: None,
                max_regression: None,
            }
        );
        let opts = parse_bench_args(&args(&[
            "--json",
            "--quick",
            "--label",
            "PR9",
            "--baseline",
            "BENCH_PR4.json",
            "--max-regression",
            "40",
        ]))
        .unwrap();
        assert!(opts.json && opts.quick);
        assert_eq!(opts.label, "PR9");
        assert_eq!(opts.baseline.as_deref(), Some("BENCH_PR4.json"));
        assert_eq!(opts.max_regression, Some(40.0));
    }

    #[test]
    fn bench_args_reject_garbage() {
        assert!(parse_bench_args(&args(&["--label"])).is_err());
        assert!(parse_bench_args(&args(&["--label", "a", "--label", "b"])).is_err());
        assert!(parse_bench_args(&args(&["--label", "has\"quote"])).is_err());
        assert!(parse_bench_args(&args(&["--label", ""])).is_err());
        assert!(parse_bench_args(&args(&["--baseline"])).is_err());
        assert!(parse_bench_args(&args(&["--baseline", "a", "--baseline", "b"])).is_err());
        assert!(parse_bench_args(&args(&["fig2"])).is_err());
        assert!(parse_bench_args(&args(&["--jobs", "2"])).is_err());
    }

    #[test]
    fn max_regression_needs_a_baseline_and_a_sane_percentage() {
        // Without --baseline there is nothing to regress against.
        let err = parse_bench_args(&args(&["--max-regression", "40"])).unwrap_err();
        assert!(err.contains("requires --baseline"), "{err}");
        for bad in ["NaN", "inf", "-5", "100", "150", "pct"] {
            assert!(
                parse_bench_args(&args(&["--baseline", "b.json", "--max-regression", bad]))
                    .is_err(),
                "{bad} must be rejected"
            );
        }
        assert!(parse_bench_args(&args(&[
            "--baseline",
            "b.json",
            "--max-regression",
            "40",
            "--max-regression",
            "50"
        ]))
        .is_err());
        let opts =
            parse_bench_args(&args(&["--baseline", "b.json", "--max-regression", "0"])).unwrap();
        assert_eq!(opts.max_regression, Some(0.0));
    }

    #[test]
    fn interfere_args_default_to_all_and_reject_garbage() {
        let (json, names) = parse_interfere_args(&args(&[])).unwrap();
        assert!(!json);
        assert_eq!(names, INTERFERENCE_EXPERIMENTS.to_vec());
        let (json, names) =
            parse_interfere_args(&args(&["--json", "interfere-occupancy"])).unwrap();
        assert!(json);
        assert_eq!(names, vec!["interfere-occupancy"]);
        let err = parse_interfere_args(&args(&["fig2"])).unwrap_err();
        assert!(
            err.contains("unknown interference experiment 'fig2'"),
            "{err}"
        );
        assert!(err.contains("interfere-timestep"), "{err}");
        let err =
            parse_interfere_args(&args(&["interfere-evasion", "interfere-evasion"])).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        assert!(parse_interfere_args(&args(&["--quick"])).is_err());
    }

    #[test]
    fn all_mixed_with_names_is_rejected() {
        assert!(resolve_names(&args(&["all", "fig2"])).is_err());
        assert_eq!(
            resolve_names(&args(&["all"])).unwrap(),
            EXPERIMENTS.to_vec()
        );
    }

    #[test]
    fn duplicates_and_unknowns_are_rejected() {
        assert!(resolve_names(&args(&["fig2", "fig2"])).is_err());
        let err = resolve_names(&args(&["fig2", "fig99", "table9"])).unwrap_err();
        assert!(err.contains("fig99") && err.contains("table9"));
        assert_eq!(
            resolve_names(&args(&["fig2", "table1"])).unwrap(),
            vec!["fig2", "table1"]
        );
    }
}
