//! Regenerate the paper's tables and figures, optionally checking them
//! against the digitised paper data.
//!
//! Usage:
//!
//! ```text
//! figures <experiment> [...]     # e.g. figures table1 fig2 fig5
//! figures all                    # everything (takes a few seconds)
//! figures list                   # show the available experiment names
//! figures --check all            # diff against the paper; non-zero exit
//!                                # when any cell is out of tolerance
//! figures --json fig5 fig6       # machine-readable artifact dump
//! figures --delta-table all      # markdown delta table (EXPERIMENTS.md)
//! figures --perturb 10 --check all   # sanity check of the harness: a 10%
//!                                    # model error must make --check fail
//! ```
//!
//! Experiment names must be unique, known, and not mixed with `all`.
//! Exit codes: 0 success, 1 out-of-tolerance cells, 2 usage errors.

use std::io::{ErrorKind, Write};
use std::process::ExitCode;

use clover_bench::{check_experiment, delta_table, run_artifact, EXPERIMENTS};
use clover_golden::check_artifact;

/// Write to stdout, exiting quietly if the reader went away (`figures all |
/// head` must not panic with a broken-pipe backtrace).
fn emit(out: &mut impl Write, text: std::fmt::Arguments<'_>) {
    if let Err(e) = out.write_fmt(text) {
        if e.kind() == ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        panic!("failed printing to stdout: {e}");
    }
}

/// Like [`emit`], but survive a broken pipe: returns `false` so the caller
/// can stop printing yet keep computing.  `--check` uses this because its
/// exit code is load-bearing — `figures --check all | head` must still exit
/// 1 when a later artifact is out of tolerance.
fn try_emit(out: &mut impl Write, text: std::fmt::Arguments<'_>) -> bool {
    match out.write_fmt(text) {
        Ok(()) => true,
        Err(e) if e.kind() == ErrorKind::BrokenPipe => false,
        Err(e) => panic!("failed printing to stdout: {e}"),
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("figures: {message}");
    eprintln!("run `figures list` for the available experiments");
    ExitCode::from(2)
}

#[derive(Debug, Default)]
struct Options {
    check: bool,
    json: bool,
    delta: bool,
    perturb: Option<f64>,
    names: Vec<String>,
}

/// Split flags from experiment names; flags may appear anywhere.
fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--json" => opts.json = true,
            "--delta-table" => opts.delta = true,
            "--perturb" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--perturb needs a percentage argument".to_string())?;
                let pct: f64 = value
                    .parse()
                    .map_err(|_| format!("--perturb: '{value}' is not a number"))?;
                opts.perturb = Some(1.0 + pct / 100.0);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag '{flag}'"));
            }
            name => opts.names.push(name.to_string()),
        }
    }
    if opts.json && (opts.check || opts.delta) {
        return Err("--json cannot be combined with --check or --delta-table".to_string());
    }
    if opts.delta && (opts.check || opts.perturb.is_some()) {
        // The delta table documents the *committed* model; silently
        // ignoring --check/--perturb here would mislead.
        return Err("--delta-table cannot be combined with --check or --perturb".to_string());
    }
    Ok(opts)
}

/// Resolve the positional names to a validated experiment list.
fn resolve_names(names: &[String]) -> Result<Vec<&'static str>, String> {
    if names.iter().any(|n| n == "all") {
        if names.len() > 1 {
            return Err(
                "'all' already includes every experiment; drop the explicit names".to_string(),
            );
        }
        return Ok(EXPERIMENTS.to_vec());
    }
    let mut resolved = Vec::new();
    let mut unknown = Vec::new();
    for name in names {
        match EXPERIMENTS.iter().find(|e| *e == name) {
            Some(e) => {
                if resolved.contains(e) {
                    return Err(format!("duplicate experiment name '{name}'"));
                }
                resolved.push(*e);
            }
            None => unknown.push(name.as_str()),
        }
    }
    if !unknown.is_empty() {
        return Err(format!("unknown experiment(s): {}", unknown.join(", ")));
    }
    Ok(resolved)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => return usage_error(&message),
    };
    let flags_used = opts.check || opts.json || opts.delta || opts.perturb.is_some();
    if opts.names.is_empty() || opts.names[0] == "list" {
        // A flag without names must not silently degrade to `list`/exit 0:
        // `figures --check` (forgotten `all`) would green-light CI while
        // checking nothing.
        if flags_used {
            return usage_error("flags require experiment names (e.g. `--check all`)");
        }
        if opts.names.len() > 1 {
            return usage_error("'list' takes no further names");
        }
        emit(&mut out, format_args!("available experiments:\n"));
        for e in EXPERIMENTS {
            emit(&mut out, format_args!("  {e}\n"));
        }
        return ExitCode::SUCCESS;
    }
    let requested = match resolve_names(&opts.names) {
        Ok(requested) => requested,
        Err(message) => return usage_error(&message),
    };

    if opts.delta {
        // The delta table always spans all 12 artifacts; restricting it
        // would silently produce an incomplete EXPERIMENTS.md section.
        if requested.len() != EXPERIMENTS.len() {
            return usage_error("--delta-table requires 'all'");
        }
        emit(&mut out, format_args!("{}", delta_table()));
        return ExitCode::SUCCESS;
    }

    let mut failed = false;
    let mut pipe_gone = false;
    let mut json_blocks = Vec::new();
    for name in requested {
        if opts.check {
            let report = match opts.perturb {
                None => check_experiment(name).expect("validated name"),
                Some(factor) => {
                    let mut artifact = run_artifact(name).expect("validated name");
                    artifact.perturb(factor);
                    check_artifact(&artifact, clover_golden::golden(name).expect("golden data"))
                }
            };
            failed |= !report.passed();
            if !pipe_gone {
                pipe_gone = !try_emit(&mut out, format_args!("{}", report.render_text(false)));
            }
        } else {
            let mut artifact = run_artifact(name).expect("validated name");
            if let Some(factor) = opts.perturb {
                artifact.perturb(factor);
            }
            if opts.json {
                json_blocks.push(artifact.to_json());
            } else {
                emit(
                    &mut out,
                    format_args!("==== {name} ====\n{}\n", artifact.to_csv()),
                );
            }
        }
    }
    if opts.json {
        emit(&mut out, format_args!("[{}]\n", json_blocks.join(",")));
    }
    if failed {
        eprintln!("figures: at least one artifact is out of tolerance of the paper data");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_and_names_parse_in_any_order() {
        let opts = parse_args(&args(&["fig2", "--check", "table1"])).unwrap();
        assert!(opts.check && !opts.json);
        assert_eq!(opts.names, vec!["fig2", "table1"]);
        let opts = parse_args(&args(&["--perturb", "10", "all"])).unwrap();
        assert_eq!(opts.perturb, Some(1.10));
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(parse_args(&args(&["--bogus"])).is_err());
        assert!(parse_args(&args(&["--perturb"])).is_err());
        assert!(parse_args(&args(&["--perturb", "ten"])).is_err());
        assert!(parse_args(&args(&["--json", "--check", "all"])).is_err());
        assert!(parse_args(&args(&["--delta-table", "--check", "all"])).is_err());
        assert!(parse_args(&args(&["--delta-table", "--perturb", "10", "all"])).is_err());
    }

    #[test]
    fn all_mixed_with_names_is_rejected() {
        assert!(resolve_names(&args(&["all", "fig2"])).is_err());
        assert_eq!(
            resolve_names(&args(&["all"])).unwrap(),
            EXPERIMENTS.to_vec()
        );
    }

    #[test]
    fn duplicates_and_unknowns_are_rejected() {
        assert!(resolve_names(&args(&["fig2", "fig2"])).is_err());
        let err = resolve_names(&args(&["fig2", "fig99", "table9"])).unwrap_err();
        assert!(err.contains("fig99") && err.contains("table9"));
        assert_eq!(
            resolve_names(&args(&["fig2", "table1"])).unwrap(),
            vec!["fig2", "table1"]
        );
    }
}
