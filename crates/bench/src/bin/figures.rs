//! Regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! figures <experiment> [...]     # e.g. figures table1 fig2 fig5
//! figures all                    # everything (takes a few minutes)
//! figures list                   # show the available experiment names
//! ```
//!
//! Output is CSV-like text on stdout, one block per experiment.

use clover_bench::{run_experiment, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "list" {
        println!("available experiments:");
        for e in EXPERIMENTS {
            println!("  {e}");
        }
        return;
    }
    let requested: Vec<&str> = if args[0] == "all" {
        EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in requested {
        match run_experiment(name) {
            Some(output) => {
                println!("==== {name} ====");
                println!("{output}");
            }
            None => {
                eprintln!("unknown experiment '{name}'; run `figures list`");
                std::process::exit(1);
            }
        }
    }
}
