//! Canned multi-tenant interference artifacts (`figures interfere`).
//!
//! The paper measures CloverLeaf on an *exclusive* node; these artifacts
//! extend the study to a *shared* node, where a competing kernel stream on
//! a sibling core fights CloverLeaf for the last-level cache.  Three views
//! of the same two-tenant co-run (`NodeSim::run_corun`, the PR's
//! private/shared hierarchy split):
//!
//! * `interfere-timestep` — the CloverLeaf timestep cost under each
//!   aggressor: the scaling model's full-domain point scaled by the
//!   co-run-derived victim traffic inflation factor,
//! * `interfere-occupancy` — the victim's shared-LLC residency and miss
//!   deltas per aggressor (solo vs contended, same LLC geometry),
//! * `interfere-evasion` — write-allocate evasion under contention: how
//!   much of the victim's store traffic still evades the write-allocate
//!   read when an aggressor churns the shared LLC.
//!
//! Unlike the 12 paper experiments these have no digitised golden data
//! (the paper never co-ran tenants), so they live outside `EXPERIMENTS`
//! and `figures --check`; everything is deterministic simulation, so the
//! bytes are still reproducible run to run.

use clover_cachesim::{AccessKind, CoRunReport, KernelSpec, NodeSim, RankBase, SimConfig, SimMemo};
use clover_core::{ScalingModel, TrafficOptions, TINY_GRID};
use clover_golden::Artifact;
use clover_machine::{icelake_sp_8360y, Machine};
use clover_scenario::interference::{aggressor_kernel, victim_kernel, TENANT_SHIFT};
use clover_scenario::{interference_factor, Aggressor, DEFAULT_INTERLEAVE};

/// The interference experiment identifiers (`figures interfere` names).
pub const INTERFERENCE_EXPERIMENTS: [&str; 3] = [
    "interfere-timestep",
    "interfere-occupancy",
    "interfere-evasion",
];

/// Generate one interference artifact by name.  Unknown names return
/// `None`.
pub fn run_interference_artifact(name: &str) -> Option<Artifact> {
    match name {
        "interfere-timestep" => Some(interfere_timestep()),
        "interfere-occupancy" => Some(interfere_occupancy()),
        "interfere-evasion" => Some(interfere_evasion()),
        _ => None,
    }
}

/// `interfere-timestep` on the paper's Ice Lake SP node.
pub fn interfere_timestep() -> Artifact {
    timestep_artifact(&icelake_sp_8360y())
}

/// `interfere-occupancy` on the paper's Ice Lake SP node.
pub fn interfere_occupancy() -> Artifact {
    occupancy_artifact(&icelake_sp_8360y())
}

/// `interfere-evasion` on the paper's Ice Lake SP node.
pub fn interfere_evasion() -> Artifact {
    evasion_artifact(&icelake_sp_8360y())
}

/// Run the two-tenant co-run of `victim` against `aggressor` (or solo for
/// [`Aggressor::None`]) on one shared LLC.
fn corun(
    machine: &Machine,
    victim: KernelSpec,
    aggressor: Aggressor,
    memo: &SimMemo,
) -> CoRunReport {
    let sim = NodeSim::new(SimConfig::new(machine.clone(), 2));
    match aggressor_kernel(machine, aggressor) {
        None => sim.run_corun(&[victim], DEFAULT_INTERLEAVE, memo),
        Some(a) => sim.run_corun(&[victim, a], DEFAULT_INTERLEAVE, memo),
    }
}

fn timestep_artifact(machine: &Machine) -> Artifact {
    let ranks = machine.topology.cores_per_domain();
    let model = ScalingModel::new(machine.clone()).with_grid(TINY_GRID);
    let base = model
        .sweep_range(ranks..=ranks, TrafficOptions::original)
        .pop()
        .expect("one rank point");
    let memo = SimMemo::new();
    let mut a = Artifact::new(
        "interfere-timestep",
        "CloverLeaf timestep cost under shared-LLC aggressors",
    )
    .column("aggressor", None)
    .num_column("inflation", Some("x"), 3)
    .num_column("time_per_step", Some("ms"), 4)
    .num_column("volume_per_step", Some("MB"), 1)
    .num_column("bandwidth", Some("GB/s"), 1);
    for aggressor in Aggressor::all() {
        let factor = interference_factor(machine, aggressor, DEFAULT_INTERLEAVE, &memo);
        a.push_row(vec![
            aggressor.name().into(),
            factor.into(),
            (base.time_per_step * factor * 1e3).into(),
            (base.volume_per_step * factor / 1e6).into(),
            (base.memory_bandwidth / 1e9).into(),
        ]);
    }
    a.push_note(format!(
        "machine: {}; grid {g}x{g}; {ranks} ranks; victim scaled by the \
         co-run traffic inflation factor (bandwidth is contention-invariant)",
        machine.name,
        g = TINY_GRID,
    ));
    a
}

fn occupancy_artifact(machine: &Machine) -> Artifact {
    let memo = SimMemo::new();
    let mut a = Artifact::new(
        "interfere-occupancy",
        "victim shared-LLC residency and miss deltas per aggressor",
    )
    .column("aggressor", None)
    .num_column("solo_occupancy", Some("lines"), 0)
    .num_column("occupancy", Some("lines"), 0)
    .num_column("occupancy_share", None, 3)
    .num_column("extra_llc_misses", Some("lines"), 0)
    .num_column("extra_read_volume", Some("MB"), 1);
    for aggressor in Aggressor::all() {
        let report = corun(machine, victim_kernel(machine), aggressor, &memo);
        let v = &report.tenants[0];
        a.push_row(vec![
            aggressor.name().into(),
            (v.solo_occupancy_lines as f64).into(),
            (v.occupancy_lines as f64).into(),
            report.occupancy_fraction(0).into(),
            v.extra_llc_misses().into(),
            (v.extra_read_lines() * 64.0 / 1e6).into(),
        ]);
    }
    a.push_note(format!(
        "machine: {}; shared LLC of a 2-core tenancy ({} lines); end-of-run \
         residency; deltas vs a solo run on the same LLC geometry",
        machine.name,
        corun(machine, victim_kernel(machine), Aggressor::None, &memo).llc_lines,
    ));
    a
}

/// A *storing* victim: two store passes over 3/8 of the LLC, the traffic
/// class whose write-allocate evasion the paper is about.  The second pass
/// is where contention bites — solo the footprint fits the shared LLC, so
/// re-stores hit the lines the first pass left resident (no further
/// write-allocates); with an aggressor's stream interleaved the reuse
/// distance exceeds the shared capacity, the lines are gone, and every
/// re-store pays the write-allocate read again.
fn store_victim(machine: &Machine) -> KernelSpec {
    let mut spec = KernelSpec::contiguous(
        RankBase::Shifted {
            shift: TENANT_SHIFT,
            plus: 0,
        },
        0,
        (machine.caches.l3.capacity_bytes as u64 * 3 / 8 / 8).max(1),
        AccessKind::Store,
    );
    spec.row_stride = 0;
    spec.rows = 2;
    spec
}

fn evasion_artifact(machine: &Machine) -> Artifact {
    let memo = SimMemo::new();
    let mut a = Artifact::new(
        "interfere-evasion",
        "victim write-allocate evasion under shared-LLC contention",
    )
    .column("aggressor", None)
    .num_column("solo_write_allocate", Some("MB"), 1)
    .num_column("write_allocate", Some("MB"), 1)
    .num_column("solo_evasion", None, 3)
    .num_column("evasion", None, 3)
    .num_column("extra_write_allocate", Some("MB"), 1);
    for aggressor in Aggressor::all() {
        let report = corun(machine, store_victim(machine), aggressor, &memo);
        let v = &report.tenants[0];
        // Fraction of ownership claims that evaded the write-allocate read.
        let evasion = |itom: f64, wa: f64| {
            if itom + wa <= 0.0 {
                0.0
            } else {
                itom / (itom + wa)
            }
        };
        a.push_row(vec![
            aggressor.name().into(),
            (v.solo.write_allocate_lines * 64.0 / 1e6).into(),
            (v.counters.write_allocate_lines * 64.0 / 1e6).into(),
            evasion(v.solo.itom_lines, v.solo.write_allocate_lines).into(),
            evasion(v.counters.itom_lines, v.counters.write_allocate_lines).into(),
            (v.extra_write_allocate_lines() * 64.0 / 1e6).into(),
        ]);
    }
    a.push_note(format!(
        "machine: {}; two-pass store victim (3/8-LLC footprint) vs each \
         aggressor; evasion = itom / (itom + write-allocate) — zero at a \
         2-core tenancy, where SpecI2M never speculates",
        machine.name,
    ));
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_machine::cva6_like;

    // The unit tests drive the machine-parameterised internals on the tiny
    // CVA6 (2 MiB LLC), keeping the capacity-derived proxy footprints —
    // and the debug-profile test time — small.  The icx-pinned public
    // artifacts run the identical code.

    #[test]
    fn unknown_interference_experiment_returns_none() {
        assert!(run_interference_artifact("interfere-bogus").is_none());
        for name in INTERFERENCE_EXPERIMENTS {
            assert!(name.starts_with("interfere-"));
        }
    }

    #[test]
    fn timestep_rows_cover_every_aggressor_and_none_is_neutral() {
        let a = timestep_artifact(&cva6_like());
        assert_eq!(a.rows.len(), Aggressor::all().len());
        let inflation = a.column_index("inflation").unwrap();
        let time = a.column_index("time_per_step").unwrap();
        assert_eq!(a.rows[0][inflation].as_f64().unwrap(), 1.0);
        for row in &a.rows[1..] {
            let f = row[inflation].as_f64().unwrap();
            assert!(f >= 1.0 && f.is_finite(), "inflation {f}");
            assert!(
                row[time].as_f64().unwrap() >= a.rows[0][time].as_f64().unwrap(),
                "contention cannot speed the victim up"
            );
        }
    }

    #[test]
    fn occupancy_deltas_are_zero_without_an_aggressor() {
        let a = occupancy_artifact(&cva6_like());
        assert_eq!(a.rows.len(), Aggressor::all().len());
        let extra = a.column_index("extra_llc_misses").unwrap();
        let share = a.column_index("occupancy_share").unwrap();
        assert_eq!(a.rows[0][extra].as_f64().unwrap(), 0.0);
        for row in &a.rows {
            let s = row[share].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&s), "occupancy share {s}");
        }
    }

    #[test]
    fn evasion_fractions_stay_in_range_and_contention_never_helps() {
        let a = evasion_artifact(&cva6_like());
        let solo = a.column_index("solo_evasion").unwrap();
        let contended = a.column_index("evasion").unwrap();
        let wa_solo = a.column_index("solo_write_allocate").unwrap();
        let wa = a.column_index("write_allocate").unwrap();
        for row in &a.rows {
            for idx in [solo, contended] {
                let e = row[idx].as_f64().unwrap();
                assert!((0.0..=1.0).contains(&e), "evasion {e}");
            }
            assert!(
                row[wa].as_f64().unwrap() + 1e-9 >= row[wa_solo].as_f64().unwrap(),
                "an aggressor cannot reduce the victim's write-allocate traffic"
            );
        }
    }
}
