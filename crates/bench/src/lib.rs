//! `clover-bench` — the figure/table regeneration harness.
//!
//! Every table and figure of the paper's evaluation has a generator here
//! that prints the corresponding rows/series as CSV-like text.  The
//! `figures` binary dispatches on the experiment name; the Criterion benches
//! under `benches/` measure the native kernels and the simulator itself.

use clover_core::decomp::Decomposition;
use clover_core::TINY_GRID;
use clover_core::{
    hotspot_profile, CommModel, OptimizationPlan, ScalingModel, TrafficModel, TrafficOptions,
};
use clover_machine::{icelake_sp_8360y, sapphire_rapids_8470, sapphire_rapids_8480, Machine};
use clover_stencil::{cloverleaf_loops, CodeBalance, PAPER_MEASURED_SINGLE_CORE};
use clover_ubench::{copy_halo_ratio, copy_volume_per_iteration, store_ratio, StoreKind};

/// All experiment identifiers the harness knows about.
pub const EXPERIMENTS: [&str; 12] = [
    "listing2", "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "fig11",
];

/// Generate the output of one experiment.  Unknown names return `None`.
pub fn run_experiment(name: &str) -> Option<String> {
    match name {
        "listing2" => Some(listing2()),
        "table1" => Some(table1()),
        "fig2" => Some(fig2()),
        "fig3" => Some(fig3()),
        "fig4" => Some(fig4()),
        "fig5" => Some(fig5()),
        "fig6" => Some(fig6()),
        "fig7" => Some(fig7()),
        "fig8" => Some(fig8()),
        "fig9" => Some(fig9()),
        "fig10" => Some(fig10()),
        "fig11" => Some(fig11()),
        _ => None,
    }
}

fn icx() -> Machine {
    icelake_sp_8360y()
}

/// Listing 2: the hotspot runtime profile at 72 ranks.
pub fn listing2() -> String {
    let mut out = String::from("function,share_percent\n");
    for e in hotspot_profile(&icx(), 72) {
        out.push_str(&format!("{},{:.2}\n", e.name, e.share * 100.0));
    }
    out
}

/// Table I: per-loop model inputs, code-balance bounds and the predicted
/// single-core balance, next to the paper's measured value.
pub fn table1() -> String {
    let machine = icx();
    let model = TrafficModel::new(machine);
    let decomp = Decomposition::new(1, TINY_GRID, TINY_GRID);
    let opts = TrafficOptions::original(1);
    let mut out = String::from(
        "loop,arrays,rd_lcf,rd_lcb,wr,rd_and_wr,flops,min,lcf_wa,lcb,max,predicted_1core,paper_measured_1core\n",
    );
    for spec in cloverleaf_loops() {
        let b = CodeBalance::from_spec(&spec);
        let t = model.predict_loop(&spec, &opts, &decomp);
        let paper = PAPER_MEASURED_SINGLE_CORE
            .iter()
            .find(|(n, _)| *n == spec.name)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{:.2},{:.2}\n",
            spec.name,
            spec.array_count(),
            spec.rd_lcf(),
            spec.rd_lcb(),
            spec.wr(),
            spec.rd_and_wr(),
            spec.flops,
            b.min,
            b.lcf_wa,
            b.lcb,
            b.max,
            t.code_balance(),
            paper
        ));
    }
    out
}

/// Fig. 2: speedup and memory bandwidth versus rank count.
pub fn fig2() -> String {
    let model = ScalingModel::new(icx());
    let mut out = String::from("ranks,prime,local_inner,speedup,bandwidth_gbs\n");
    for p in model.sweep(72, TrafficOptions::original) {
        out.push_str(&format!(
            "{},{},{},{:.3},{:.1}\n",
            p.ranks,
            p.prime as u8,
            p.local_inner,
            p.speedup,
            p.memory_bandwidth / 1e9
        ));
    }
    out
}

/// Fig. 3: per-loop code balance versus rank count.
pub fn fig3() -> String {
    let model = ScalingModel::new(icx());
    let loops: Vec<String> = cloverleaf_loops().iter().map(|l| l.name.clone()).collect();
    let mut out = format!("ranks,{}\n", loops.join(","));
    for p in model.sweep(72, TrafficOptions::original) {
        let balances: Vec<String> = p
            .loop_balances
            .iter()
            .map(|(_, b)| format!("{b:.2}"))
            .collect();
        out.push_str(&format!("{},{}\n", p.ranks, balances.join(",")));
    }
    out
}

/// Fig. 4: relative MPI time breakdown for the paper's rank counts.
pub fn fig4() -> String {
    let model = CommModel::new(icx());
    let mut out = String::from("ranks,serial,waitall,allreduce,isend,reduce,barrier\n");
    for s in model.figure4_points() {
        out.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            s.ranks, s.serial, s.waitall, s.allreduce, s.isend, s.reduce, s.barrier
        ));
    }
    out
}

fn store_ratio_figure(machine: &Machine, step: usize) -> String {
    let mut out = String::from("cores,st1,st2,st3,stnt1,stnt2,stnt3\n");
    let mut cores = 1;
    while cores <= machine.total_cores() {
        let row: Vec<String> = (1..=3)
            .map(|s| format!("{:.3}", store_ratio(machine, cores, s, StoreKind::Normal)))
            .chain((1..=3).map(|s| {
                format!(
                    "{:.3}",
                    store_ratio(machine, cores, s, StoreKind::NonTemporal)
                )
            }))
            .collect();
        out.push_str(&format!("{},{}\n", cores, row.join(",")));
        cores += step;
    }
    out
}

/// Fig. 5: store ratios on Ice Lake SP.
pub fn fig5() -> String {
    store_ratio_figure(&icx(), 3)
}

/// Fig. 6: copy-kernel data volume per iteration versus thread count.
pub fn fig6() -> String {
    let machine = icx();
    let mut out = String::from("threads,read_bytes_per_it,write_bytes_per_it,itom_bytes_per_it\n");
    for threads in 1..=36 {
        let p = copy_volume_per_iteration(&machine, threads);
        out.push_str(&format!(
            "{},{:.2},{:.2},{:.2}\n",
            p.threads, p.read_bytes_per_it, p.write_bytes_per_it, p.itom_bytes_per_it
        ));
    }
    out
}

/// Fig. 7: predicted vs. full-node code balance for the original and the
/// optimized code.
pub fn fig7() -> String {
    let machine = icx();
    let model = TrafficModel::new(machine.clone());
    let decomp = Decomposition::new(72, TINY_GRID, TINY_GRID);
    let plan = OptimizationPlan::build(&machine, 72);
    let mut out = String::from("loop,prediction_min,prediction,original,optimized\n");
    for (spec, advice) in cloverleaf_loops().iter().zip(&plan.loops) {
        let bounds = CodeBalance::from_spec(spec);
        let refined = model
            .predict_loop(spec, &TrafficOptions::original(72), &decomp)
            .code_balance();
        out.push_str(&format!(
            "{},{},{:.2},{:.2},{:.2}\n",
            spec.name, bounds.min, refined, advice.original_balance, advice.optimized_balance
        ));
    }
    out.push_str(&format!(
        "# average improvement {:.1}%, max {:.1}%\n",
        plan.average_improvement() * 100.0,
        plan.max_improvement() * 100.0
    ));
    out
}

fn copy_halo_figure(machine: &Machine, with_pf_off: bool) -> String {
    let mut out = String::from(
        "halo,inner216,inner530,inner1920,inner216_pfoff,inner530_pfoff,inner1920_pfoff\n",
    );
    for halo in 0..=17usize {
        let mut cells = Vec::new();
        for &inner in &[216usize, 530, 1920] {
            cells.push(format!(
                "{:.3}",
                copy_halo_ratio(machine, inner, halo, true).ratio
            ));
        }
        if with_pf_off {
            for &inner in &[216usize, 530, 1920] {
                cells.push(format!(
                    "{:.3}",
                    copy_halo_ratio(machine, inner, halo, false).ratio
                ));
            }
        } else {
            cells.extend(["".into(), "".into(), "".into()]);
        }
        out.push_str(&format!("{},{}\n", halo, cells.join(",")));
    }
    out
}

/// Fig. 8: copy read-to-write ratio versus halo size on Ice Lake SP,
/// prefetchers on and off.
pub fn fig8() -> String {
    copy_halo_figure(&icx(), true)
}

/// Fig. 9: store ratios on the SPR 8470 with SNC on and off.
pub fn fig9() -> String {
    let on = store_ratio_figure(&sapphire_rapids_8470(true), 8);
    let off = store_ratio_figure(&sapphire_rapids_8470(false), 8);
    format!("# SNC on\n{on}# SNC off\n{off}")
}

/// Fig. 10: store ratios on the SPR 8480+.
pub fn fig10() -> String {
    store_ratio_figure(&sapphire_rapids_8480(), 8)
}

/// Fig. 11: copy read-to-write ratio versus halo size on the SPR 8480+.
pub fn fig11() -> String {
    copy_halo_figure(&sapphire_rapids_8480(), false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheap_experiments_produce_output() {
        for name in ["listing2", "table1", "fig4", "fig6", "fig7"] {
            let out = run_experiment(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(out.lines().count() > 2, "{name} output too short");
        }
    }

    #[test]
    fn unknown_experiment_returns_none() {
        assert!(run_experiment("fig99").is_none());
    }

    #[test]
    fn table1_has_22_loop_rows() {
        let t = table1();
        assert_eq!(t.lines().count(), 23);
        assert!(t.contains("am04,2,1,2,1,0,4,16,24,24,32"));
    }

    #[test]
    fn listing2_totals_to_100_percent() {
        let total: f64 = listing2()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse::<f64>().unwrap())
            .sum();
        assert!((total - 100.0).abs() < 0.5, "total {total}");
    }

    #[test]
    fn fig7_reports_improvement_summary() {
        let f = fig7();
        assert!(f.contains("average improvement"));
        assert_eq!(
            f.lines()
                .filter(|l| !l.starts_with('#') && !l.starts_with("loop"))
                .count(),
            22
        );
    }
}
