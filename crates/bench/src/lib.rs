//! `clover-bench` — the figure/table regeneration harness.
//!
//! Every table and figure of the paper's evaluation has a generator here
//! that produces a typed [`Artifact`] (named, unit-annotated columns); the
//! CSV text the `figures` binary prints and its `--json` dump are renderings
//! of that structure.  `figures --check` diffs each artifact against the
//! digitised paper data in `clover-golden`; the Criterion benches under
//! `benches/` measure the native kernels and the simulator itself.  The
//! [`sweep`] module re-expresses the sweep-shaped experiments (fig7, fig9,
//! fig10) as canned `clover-scenario` plans evaluated by the parallel
//! runner, byte-identical to the sequential generators.  The
//! [`interference`] module adds the canned multi-tenant artifacts behind
//! `figures interfere` — shared-LLC co-run studies the paper has no golden
//! data for, kept outside [`EXPERIMENTS`].  The [`perf`]
//! module is the perf-trajectory harness behind `figures bench --json`:
//! throughput measurements of the simulator hot loops whose JSON reports
//! (`BENCH_*.json`) seed a cross-PR performance baseline.

pub mod interference;
pub mod perf;
pub mod sweep;

pub use interference::{run_interference_artifact, INTERFERENCE_EXPERIMENTS};
pub use perf::{run_perf_bench, BaselineReport, BenchReport, BenchResult, Speedup};
pub use sweep::{canned_sweep_plan, run_canned_sweep, SWEEP_PLAN_EXPERIMENTS};

use clover_cachesim::SimMemo;
use clover_core::decomp::Decomposition;
use clover_core::TINY_GRID;
use clover_core::{
    hotspot_profile, CommModel, OptimizationPlan, ScalingModel, TrafficModel, TrafficOptions,
};
use clover_golden::{check_artifact, golden, markdown_delta_table, Artifact, Cell, DiffReport};
use clover_machine::{icelake_sp_8360y, sapphire_rapids_8470, sapphire_rapids_8480, Machine};
use clover_stencil::{cloverleaf_loops, CodeBalance, PAPER_MEASURED_SINGLE_CORE};
use clover_ubench::{
    copy_halo_ratio_memo, copy_volume_per_iteration_memo, store_ratio_memo, StoreKind,
};

/// All experiment identifiers the harness knows about.
pub const EXPERIMENTS: [&str; 12] = [
    "listing2", "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "fig11",
];

/// Generate the typed artifact of one experiment.  Unknown names return
/// `None`.
pub fn run_artifact(name: &str) -> Option<Artifact> {
    match name {
        "listing2" => Some(listing2()),
        "table1" => Some(table1()),
        "fig2" => Some(fig2()),
        "fig3" => Some(fig3()),
        "fig4" => Some(fig4()),
        "fig5" => Some(fig5()),
        "fig6" => Some(fig6()),
        "fig7" => Some(fig7()),
        "fig8" => Some(fig8()),
        "fig9" => Some(fig9()),
        "fig10" => Some(fig10()),
        "fig11" => Some(fig11()),
        _ => None,
    }
}

/// Generate the CSV rendering of one experiment (the historical interface).
pub fn run_experiment(name: &str) -> Option<String> {
    run_artifact(name).map(|a| a.to_csv())
}

/// Diff one experiment against the digitised paper data.  `None` for
/// unknown names.
pub fn check_experiment(name: &str) -> Option<DiffReport> {
    let artifact = run_artifact(name)?;
    let golden = golden(name)?;
    Some(check_artifact(&artifact, golden))
}

/// Generate the paper-vs-reproduction delta table for `EXPERIMENTS.md` by
/// running and checking all 12 experiments.
pub fn delta_table() -> String {
    let entries: Vec<_> = EXPERIMENTS
        .iter()
        .map(|name| {
            let golden = golden(name).expect("every experiment has golden data");
            let artifact = run_artifact(name).expect("every experiment runs");
            (check_artifact(&artifact, golden), golden)
        })
        .collect();
    markdown_delta_table(&entries)
}

fn icx() -> Machine {
    icelake_sp_8360y()
}

/// Listing 2: the hotspot runtime profile at 72 ranks.
pub fn listing2() -> Artifact {
    let mut a = Artifact::new("listing2", "hotspot runtime profile at 72 ranks")
        .column("function", None)
        .num_column("share_percent", Some("%"), 2);
    for e in hotspot_profile(&icx(), 72) {
        a.push_row(vec![e.name.into(), (e.share * 100.0).into()]);
    }
    a
}

/// Table I: per-loop model inputs, code-balance bounds and the predicted
/// single-core balance, next to the paper's measured value.
pub fn table1() -> Artifact {
    let machine = icx();
    let model = TrafficModel::new(machine);
    let decomp = Decomposition::new(1, TINY_GRID, TINY_GRID);
    let opts = TrafficOptions::original(1);
    let mut a = Artifact::new(
        "table1",
        "per-loop model inputs, code-balance bounds and single-core balances",
    )
    .column("loop", None)
    .column("arrays", None)
    .column("rd_lcf", None)
    .column("rd_lcb", None)
    .column("wr", None)
    .column("rd_and_wr", None)
    .column("flops", Some("flop/it"))
    .column("min", Some("byte/it"))
    .column("lcf_wa", Some("byte/it"))
    .column("lcb", Some("byte/it"))
    .column("max", Some("byte/it"))
    .num_column("predicted_1core", Some("byte/it"), 2)
    .num_column("paper_measured_1core", Some("byte/it"), 2);
    for spec in cloverleaf_loops() {
        let b = CodeBalance::from_spec(&spec);
        let t = model.predict_loop(&spec, &opts, &decomp);
        let paper = PAPER_MEASURED_SINGLE_CORE
            .iter()
            .find(|(n, _)| *n == spec.name)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        a.push_row(vec![
            spec.name.clone().into(),
            spec.array_count().into(),
            spec.rd_lcf().into(),
            spec.rd_lcb().into(),
            spec.wr().into(),
            spec.rd_and_wr().into(),
            spec.flops.into(),
            (b.min as i64).into(),
            (b.lcf_wa as i64).into(),
            (b.lcb as i64).into(),
            (b.max as i64).into(),
            t.code_balance().into(),
            paper.into(),
        ]);
    }
    a
}

/// Fig. 2: speedup and memory bandwidth versus rank count.
pub fn fig2() -> Artifact {
    let model = ScalingModel::new(icx());
    let mut a = Artifact::new("fig2", "speedup and memory bandwidth vs. rank count")
        .column("ranks", None)
        .column("prime", None)
        .column("local_inner", Some("cells"))
        .num_column("speedup", None, 3)
        .num_column("bandwidth_gbs", Some("GB/s"), 1);
    for p in model.sweep(72, TrafficOptions::original) {
        a.push_row(vec![
            p.ranks.into(),
            (p.prime as i64).into(),
            p.local_inner.into(),
            p.speedup.into(),
            (p.memory_bandwidth / 1e9).into(),
        ]);
    }
    a
}

/// Fig. 3: per-loop code balance versus rank count.
pub fn fig3() -> Artifact {
    let model = ScalingModel::new(icx());
    let mut a = Artifact::new("fig3", "per-loop code balance vs. rank count").column("ranks", None);
    for l in cloverleaf_loops() {
        a = a.num_column(&l.name, Some("byte/it"), 2);
    }
    for p in model.sweep(72, TrafficOptions::original) {
        let mut row: Vec<Cell> = vec![p.ranks.into()];
        row.extend(p.loop_balances.iter().map(|(_, b)| Cell::Num(*b)));
        a.push_row(row);
    }
    a
}

/// Fig. 4: relative MPI time breakdown for the paper's rank counts.
pub fn fig4() -> Artifact {
    let model = CommModel::new(icx());
    let mut a = Artifact::new("fig4", "relative MPI time breakdown")
        .column("ranks", None)
        .num_column("serial", None, 4)
        .num_column("waitall", None, 4)
        .num_column("allreduce", None, 4)
        .num_column("isend", None, 4)
        .num_column("reduce", None, 4)
        .num_column("barrier", None, 4);
    for s in model.figure4_points() {
        a.push_row(vec![
            s.ranks.into(),
            s.serial.into(),
            s.waitall.into(),
            s.allreduce.into(),
            s.isend.into(),
            s.reduce.into(),
            s.barrier.into(),
        ]);
    }
    a
}

/// One store-ratio row: normal stores with 1–3 streams, then NT stores.
/// Every point goes through `memo`, so neighbouring core counts share their
/// representative-core simulations (bit-identical to the unmemoized path).
fn store_ratio_cells(machine: &Machine, cores: usize, memo: &SimMemo) -> Vec<Cell> {
    (1..=3)
        .map(|s| store_ratio_memo(machine, cores, s, StoreKind::Normal, memo))
        .chain((1..=3).map(|s| store_ratio_memo(machine, cores, s, StoreKind::NonTemporal, memo)))
        .map(Cell::Num)
        .collect()
}

fn store_ratio_columns(a: Artifact) -> Artifact {
    a.num_column("st1", None, 3)
        .num_column("st2", None, 3)
        .num_column("st3", None, 3)
        .num_column("stnt1", None, 3)
        .num_column("stnt2", None, 3)
        .num_column("stnt3", None, 3)
}

/// One store-ratio row of a figure (`snc` label, core count, six ratios).
fn store_ratio_row(
    machine: &Machine,
    cores: usize,
    extra: Option<&str>,
    memo: &SimMemo,
) -> Vec<Cell> {
    let mut row: Vec<Cell> = Vec::new();
    if let Some(label) = extra {
        row.push(label.into());
    }
    row.push(cores.into());
    row.extend(store_ratio_cells(machine, cores, memo));
    row
}

/// The core counts a store-ratio figure samples: `cores` in steps of `step`.
fn store_ratio_core_axis(cores: std::ops::RangeInclusive<usize>, step: usize) -> Vec<usize> {
    cores.step_by(step).collect()
}

fn store_ratio_figure(
    a: &mut Artifact,
    machine: &Machine,
    cores: std::ops::RangeInclusive<usize>,
    step: usize,
    extra: Option<&str>,
    memo: &SimMemo,
) {
    for c in store_ratio_core_axis(cores, step) {
        a.push_row(store_ratio_row(machine, c, extra, memo));
    }
}

/// Fig. 5: store ratios on Ice Lake SP.
pub fn fig5() -> Artifact {
    let machine = icx();
    let memo = SimMemo::new();
    let mut a = store_ratio_columns(
        Artifact::new("fig5", "store ratios on Ice Lake SP").column("cores", None),
    );
    store_ratio_figure(&mut a, &machine, 1..=machine.total_cores(), 3, None, &memo);
    a
}

/// Fig. 6: copy-kernel data volume per iteration versus thread count.
pub fn fig6() -> Artifact {
    let machine = icx();
    let mut a = Artifact::new(
        "fig6",
        "copy-kernel data volume per iteration vs. thread count",
    )
    .column("threads", None)
    .num_column("read_bytes_per_it", Some("byte/it"), 2)
    .num_column("write_bytes_per_it", Some("byte/it"), 2)
    .num_column("itom_bytes_per_it", Some("byte/it"), 2);
    let memo = SimMemo::new();
    for threads in 1..=36 {
        let p = copy_volume_per_iteration_memo(&machine, threads, &memo);
        a.push_row(vec![
            p.threads.into(),
            p.read_bytes_per_it.into(),
            p.write_bytes_per_it.into(),
            p.itom_bytes_per_it.into(),
        ]);
    }
    a
}

/// Fig. 7: predicted vs. full-node code balance for the original and the
/// optimized code.
pub fn fig7() -> Artifact {
    let machine = icx();
    let model = TrafficModel::new(machine.clone());
    let decomp = Decomposition::new(72, TINY_GRID, TINY_GRID);
    let plan = OptimizationPlan::build(&machine, 72);
    let mut a = Artifact::new(
        "fig7",
        "predicted vs. full-node code balance, original vs. optimized code",
    )
    .column("loop", None)
    .column("prediction_min", Some("byte/it"))
    .num_column("prediction", Some("byte/it"), 2)
    .num_column("original", Some("byte/it"), 2)
    .num_column("optimized", Some("byte/it"), 2);
    for (spec, advice) in cloverleaf_loops().iter().zip(&plan.loops) {
        let bounds = CodeBalance::from_spec(spec);
        let refined = model
            .predict_loop(spec, &TrafficOptions::original(72), &decomp)
            .code_balance();
        a.push_row(vec![
            spec.name.clone().into(),
            (bounds.min as i64).into(),
            refined.into(),
            advice.original_balance.into(),
            advice.optimized_balance.into(),
        ]);
    }
    a.push_note(format!(
        "average improvement {:.1}%, max {:.1}%",
        plan.average_improvement() * 100.0,
        plan.max_improvement() * 100.0
    ));
    a
}

fn copy_halo_figure(a: &mut Artifact, machine: &Machine, with_pf_off: bool) {
    // Every (inner, halo) pair is a distinct kernel, so the memo's value
    // here is the pooled-core arena reuse across the 18×3(×2) points.
    let memo = SimMemo::new();
    for halo in 0..=17usize {
        let mut row: Vec<Cell> = vec![halo.into()];
        for &inner in &[216usize, 530, 1920] {
            row.push(
                copy_halo_ratio_memo(machine, inner, halo, true, &memo)
                    .ratio
                    .into(),
            );
        }
        if with_pf_off {
            for &inner in &[216usize, 530, 1920] {
                row.push(
                    copy_halo_ratio_memo(machine, inner, halo, false, &memo)
                        .ratio
                        .into(),
                );
            }
        }
        a.push_row(row);
    }
}

fn copy_halo_columns(a: Artifact, with_pf_off: bool) -> Artifact {
    let mut a = a
        .column("halo", Some("cells"))
        .num_column("inner216", None, 3)
        .num_column("inner530", None, 3)
        .num_column("inner1920", None, 3);
    if with_pf_off {
        a = a
            .num_column("inner216_pfoff", None, 3)
            .num_column("inner530_pfoff", None, 3)
            .num_column("inner1920_pfoff", None, 3);
    }
    a
}

/// Fig. 8: copy read-to-write ratio versus halo size on Ice Lake SP,
/// prefetchers on and off.
pub fn fig8() -> Artifact {
    let mut a = copy_halo_columns(
        Artifact::new(
            "fig8",
            "copy read/write ratio vs. halo size on ICX, PF on/off",
        ),
        true,
    );
    copy_halo_figure(&mut a, &icx(), true);
    a
}

/// Fig. 9: store ratios on the SPR 8470 with SNC on and off.
pub fn fig9() -> Artifact {
    let mut a = store_ratio_columns(
        Artifact::new("fig9", "store ratios on SPR 8470, SNC on vs. off")
            .column("snc", None)
            .column("cores", None),
    );
    let on = sapphire_rapids_8470(true);
    let off = sapphire_rapids_8470(false);
    let memo = SimMemo::new();
    store_ratio_figure(&mut a, &on, 1..=on.total_cores(), 8, Some("on"), &memo);
    store_ratio_figure(&mut a, &off, 1..=off.total_cores(), 8, Some("off"), &memo);
    a
}

/// Fig. 10: store ratios on the SPR 8480+.
pub fn fig10() -> Artifact {
    let machine = sapphire_rapids_8480();
    let mut a = store_ratio_columns(
        Artifact::new("fig10", "store ratios on SPR 8480+").column("cores", None),
    );
    let memo = SimMemo::new();
    store_ratio_figure(&mut a, &machine, 1..=machine.total_cores(), 8, None, &memo);
    a
}

/// Fig. 11: copy read-to-write ratio versus halo size on the SPR 8480+.
pub fn fig11() -> Artifact {
    let mut a = copy_halo_columns(
        Artifact::new("fig11", "copy read/write ratio vs. halo size on SPR 8480+"),
        false,
    );
    copy_halo_figure(&mut a, &sapphire_rapids_8480(), false);
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheap_experiments_produce_output() {
        for name in ["listing2", "table1", "fig4", "fig6", "fig7"] {
            let out = run_experiment(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(out.lines().count() > 2, "{name} output too short");
        }
    }

    #[test]
    fn unknown_experiment_returns_none() {
        assert!(run_experiment("fig99").is_none());
        assert!(run_artifact("fig99").is_none());
        assert!(check_experiment("fig99").is_none());
    }

    #[test]
    fn table1_has_22_loop_rows() {
        let a = table1();
        assert_eq!(a.rows.len(), 22);
        let t = a.to_csv();
        assert_eq!(t.lines().count(), 23);
        assert!(t.contains("am04,2,1,2,1,0,4,16,24,24,32"));
    }

    #[test]
    fn listing2_totals_to_100_percent() {
        let a = listing2();
        let idx = a.column_index("share_percent").unwrap();
        let total: f64 = a.rows.iter().map(|r| r[idx].as_f64().unwrap()).sum();
        assert!((total - 100.0).abs() < 0.5, "total {total}");
    }

    #[test]
    fn fig7_reports_improvement_summary() {
        let a = fig7();
        assert_eq!(a.rows.len(), 22);
        let f = a.to_csv();
        assert!(f.contains("average improvement"));
        assert_eq!(
            f.lines()
                .filter(|l| !l.starts_with('#') && !l.starts_with("loop"))
                .count(),
            22
        );
    }

    #[test]
    fn artifacts_carry_units() {
        let a = table1();
        let col = &a.columns[a.column_index("predicted_1core").unwrap()];
        assert_eq!(col.unit.as_deref(), Some("byte/it"));
    }

    #[test]
    fn cheap_experiments_pass_their_golden_check() {
        for name in ["listing2", "table1", "fig4", "fig7"] {
            let report = check_experiment(name).unwrap();
            assert!(report.passed(), "{name}:\n{}", report.render_text(false));
        }
    }

    #[test]
    fn perturbed_artifact_fails_its_golden_check() {
        let mut a = table1();
        a.perturb(1.10);
        let report = check_artifact(&a, golden("table1").unwrap());
        assert!(!report.passed(), "a 10% model error must be caught");
    }

    #[test]
    fn json_rendering_roundtrips_shape() {
        let a = fig4();
        let json = a.to_json();
        assert!(json.contains("\"id\":\"fig4\""));
        assert!(json.contains("\"name\":\"waitall\""));
    }
}
