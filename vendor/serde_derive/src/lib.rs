//! No-op `Serialize`/`Deserialize` derives (offline subset of `serde_derive`).
//!
//! The workspace only uses the derives as markers on plain-data structs — no
//! code serializes anything yet — so expanding to nothing is sufficient.  A
//! future PR that actually needs (de)serialization swaps this for the real
//! crate (see `vendor/README.md`).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
