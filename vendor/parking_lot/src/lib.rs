//! Offline subset of `parking_lot`: a `Mutex` whose `lock()` returns the
//! guard directly (no poisoning), backed by `std::sync::Mutex`.

use std::sync::Mutex as StdMutex;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning (a panicked holder does
    /// not poison the data for later lockers — `parking_lot` semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutably access the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_guards_shared_state() {
        let m = std::sync::Arc::new(Mutex::new(0usize));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
