//! Offline subset of `serde`: the two trait names and their derive macros.
//!
//! The derives expand to nothing (see `vendor/serde_derive`), which is fine
//! because nothing in the workspace takes `T: Serialize` bounds yet.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
