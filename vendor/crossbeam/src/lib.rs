//! Offline subset of `crossbeam`: the `channel` module, backed by
//! `std::sync::mpsc`.
//!
//! `clover-simpi` uses one unbounded MPSC channel per rank (many senders,
//! one owning receiver), which `std::sync::mpsc` models exactly; the only
//! API difference papered over here is the error types.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a value; errors only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives; errors once all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// The receiver was dropped; the value comes back to the caller.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// All senders were dropped and the channel is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn dropped_receiver_reports_send_error() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(7).is_err());
        }
    }
}
