//! Offline subset of `crossbeam`: the `channel` module, backed by
//! `std::sync::mpsc`, and the `thread` module (scoped threads), backed by
//! `std::thread::scope`.
//!
//! `clover-simpi` uses one unbounded MPSC channel per rank (many senders,
//! one owning receiver), which `std::sync::mpsc` models exactly; the only
//! API difference papered over here is the error types.  `clover-scenario`
//! fans sweep evaluations out with `crossbeam::thread::scope`, whose
//! upstream API (spawn closures receive the scope, `scope` returns a
//! `Result` instead of resuming worker panics) is reproduced on top of the
//! standard library's scoped threads.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a value; errors only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives; errors once all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// The receiver was dropped; the value comes back to the caller.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// All senders were dropped and the channel is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn dropped_receiver_reports_send_error() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(7).is_err());
        }
    }
}

pub mod thread {
    use std::any::Any;
    use std::sync::{Arc, Mutex};
    use std::thread as std_thread;

    /// Result of [`scope`] and [`ScopedJoinHandle::join`]: `Err` carries the
    /// panic payload of a worker, exactly like upstream crossbeam.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// One worker's parked panic payload.  `std::thread::scope` replaces the
    /// payload of an unjoined panicked child with a generic message, so each
    /// worker catches its own panic into a slot the handle and the scope can
    /// harvest the *real* payload from.
    type PayloadSlot = Arc<Mutex<Option<Box<dyn Any + Send + 'static>>>>;

    /// A scope for spawning borrowing threads (upstream
    /// `crossbeam::thread::Scope`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
        slots: Arc<Mutex<Vec<PayloadSlot>>>,
    }

    /// Handle to a scoped thread (upstream
    /// `crossbeam::thread::ScopedJoinHandle`).
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, Option<T>>,
        slot: PayloadSlot,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        /// A payload consumed here counts as handled and no longer makes
        /// the enclosing [`scope`] return `Err` (upstream behaviour).
        pub fn join(self) -> Result<T> {
            match self.inner.join() {
                Ok(Some(value)) => Ok(value),
                Ok(None) => Err(self
                    .slot
                    .lock()
                    .unwrap()
                    .take()
                    .expect("panicked worker parked its payload")),
                Err(payload) => Err(payload),
            }
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread that may borrow from the enclosing scope.  As in
        /// upstream crossbeam the closure receives the scope again so
        /// workers can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            let slots = self.slots.clone();
            let slot: PayloadSlot = Arc::new(Mutex::new(None));
            slots.lock().unwrap().push(slot.clone());
            let worker_slot = slot.clone();
            let handle = inner.spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    f(&Scope {
                        inner,
                        slots: slots.clone(),
                    })
                }));
                match result {
                    Ok(value) => Some(value),
                    Err(payload) => {
                        *worker_slot.lock().unwrap() = Some(payload);
                        None
                    }
                }
            });
            ScopedJoinHandle {
                inner: handle,
                slot,
            }
        }
    }

    /// Create a scope whose spawned threads are all joined before it
    /// returns.  As in upstream crossbeam, a panic in a worker whose
    /// payload was not consumed via [`ScopedJoinHandle::join`] makes the
    /// scope return `Err` carrying that worker's actual panic value; a
    /// panic in the closure `f` itself propagates normally.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let slots: Arc<Mutex<Vec<PayloadSlot>>> = Arc::new(Mutex::new(Vec::new()));
        let result = std_thread::scope(|s| {
            f(&Scope {
                inner: s,
                slots: slots.clone(),
            })
        });
        let slots = std::mem::take(&mut *slots.lock().unwrap());
        for slot in slots {
            if let Some(payload) = slot.lock().unwrap().take() {
                return Err(payload);
            }
        }
        Ok(result)
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_and_join() {
            let counter = AtomicUsize::new(0);
            let counter = &counter;
            let total = super::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|i| {
                        s.spawn(move |_| {
                            counter.fetch_add(1, Ordering::SeqCst);
                            i * 10
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum::<usize>()
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 4);
            assert_eq!(total, 60);
        }

        #[test]
        fn unjoined_worker_panic_becomes_err_with_its_payload() {
            let result = super::scope(|s| {
                s.spawn(|_| panic!("worker died"));
            });
            let payload = result.unwrap_err();
            assert_eq!(payload.downcast_ref::<&str>(), Some(&"worker died"));
        }

        #[test]
        fn joined_worker_panic_is_handled_and_scope_succeeds() {
            let result = super::scope(|s| {
                let handle = s.spawn(|_| -> usize { panic!("boom") });
                let payload = handle.join().unwrap_err();
                assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
                42
            });
            assert_eq!(result.unwrap(), 42);
        }

        #[test]
        fn nested_spawn_through_scope_argument() {
            let done = AtomicUsize::new(0);
            super::scope(|s| {
                s.spawn(|s| {
                    s.spawn(|_| {
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                });
            })
            .unwrap();
            assert_eq!(done.load(Ordering::SeqCst), 1);
        }
    }
}
