//! Offline subset of `proptest`.
//!
//! Supports the surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro over `#[test] fn name(arg in strategy, ...)`
//!   items with plain identifier arguments,
//! * integer range strategies (`lo..hi`, `lo..=hi`) and
//!   [`sample::select`] over a `Vec`,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! The runner is deterministic: every test function derives its RNG seed
//! from its own name, runs [`test_runner::CASES`] cases, and always includes
//! both boundary values of each strategy, so failures reproduce exactly.
//! There is no shrinking — the boundary-first schedule keeps counterexamples
//! small in practice.

pub mod test_runner {
    /// Number of cases each property runs.
    pub const CASES: usize = 64;

    /// SplitMix64 — small, fast, deterministic.
    pub struct Rng(u64);

    impl Rng {
        pub fn new(seed: u64) -> Self {
            Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Seed derived from the test name (FNV-1a) so each property gets a
    /// stable, distinct case sequence.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of test-case values.  `case` 0 and 1 are the boundaries;
    /// later cases draw from `rng`.
    pub trait Strategy {
        type Value;
        fn sample(&self, case: usize, rng: &mut Rng) -> Self::Value;
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, case: usize, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end - self.start) as u64;
                    match case {
                        0 => self.start,
                        1 => self.end - 1,
                        _ => self.start + (rng.next_u64() % width) as $t,
                    }
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, case: usize, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    // Width may overflow the type for full-domain ranges;
                    // u128 arithmetic keeps the modulus exact.
                    let width = (hi as u128) - (lo as u128) + 1;
                    match case {
                        0 => lo,
                        1 => hi,
                        _ => lo + ((rng.next_u64() as u128 % width) as $t),
                    }
                }
            }
        )*};
    }

    impl_int_ranges!(u8, u16, u32, u64, usize);

    /// Strategy choosing uniformly from a fixed set of options.
    pub struct Select<T>(pub(crate) Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, case: usize, rng: &mut Rng) -> T {
            assert!(!self.0.is_empty(), "select over empty set");
            let idx = match case {
                0 => 0,
                1 => self.0.len() - 1,
                _ => rng.next_u64() as usize % self.0.len(),
            };
            self.0[idx].clone()
        }
    }
}

pub mod sample {
    use crate::strategy::Select;

    /// Strategy yielding one of the given options per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of `proptest::prelude::prop::*` for the paths the tests use.
    pub mod prop {
        pub use crate::sample;
    }
}

/// Run each enclosed `#[test] fn name(arg in strategy, ...)` item as a
/// property over [`test_runner::CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __seed = $crate::test_runner::seed_from_name(stringify!($name));
                let mut __rng = $crate::test_runner::Rng::new(__seed);
                for __case in 0..$crate::test_runner::CASES {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), __case, &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a name the property-test bodies expect.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name the property-test bodies expect.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a name the property-test bodies expect.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies stay within bounds and hit both ends.
        #[test]
        fn ranges_are_in_bounds(x in 3usize..10, y in 1u64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=5).contains(&y));
        }

        #[test]
        fn select_yields_members(v in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!([2, 4, 8].contains(&v));
        }
    }

    #[test]
    fn boundaries_come_first() {
        let mut rng = crate::test_runner::Rng::new(1);
        assert_eq!(Strategy::sample(&(5usize..9), 0, &mut rng), 5);
        assert_eq!(Strategy::sample(&(5usize..9), 1, &mut rng), 8);
        assert_eq!(Strategy::sample(&(5usize..=9), 1, &mut rng), 9);
    }

    #[test]
    fn runner_is_deterministic() {
        let mut a = crate::test_runner::Rng::new(42);
        let mut b = crate::test_runner::Rng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
