//! Offline subset of `criterion`.
//!
//! Implements the API surface the workspace's benches use — benchmark
//! groups, [`BenchmarkId`], [`Throughput`], `criterion_group!`/
//! `criterion_main!` — with a simple wall-clock timer: each benchmark is
//! warmed up once, then timed over `sample_size` iterations, and one line of
//! `name: time/iter [throughput]` is printed.  Good enough for smoke-level
//! comparisons; swap in the real crate for statistics (see
//! `vendor/README.md`).

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

/// Declared per-iteration data volume, reported as a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` once to warm up, then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn report(name: &str, samples: usize, elapsed: Duration, throughput: Option<Throughput>) {
    let per_iter = elapsed.as_secs_f64() / samples.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!("  {:.2} GiB/s", b as f64 / per_iter / (1u64 << 30) as f64)
        }
        Some(Throughput::Elements(n)) => format!("  {:.3e} elem/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!("{name}: {:.3} ms/iter{rate}", per_iter * 1e3);
}

/// Collection of benchmarks; entry point handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    fn samples(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.samples(),
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples(),
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&id.into().0, b.samples, b.elapsed, None);
        self
    }
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    // Tie the group to its Criterion like the real API does.
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declare the per-iteration data volume.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into().0),
            b.samples,
            b.elapsed,
            self.throughput,
        );
        self
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.0),
            b.samples,
            b.elapsed,
            self.throughput,
        );
        self
    }

    /// Close the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Define `pub fn $name()` running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `fn main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("sum");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("plain", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("upto", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn group_and_macros_run() {
        benches();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter(64).0, "64");
        assert_eq!(BenchmarkId::from("x").0, "x");
    }
}
