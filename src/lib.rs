//! `cloverleaf-wa` — umbrella crate of the CloverLeaf write-allocate-evasion
//! study.
//!
//! This crate re-exports the member crates of the workspace so downstream
//! users can depend on a single package:
//!
//! * [`machine`] — machine descriptions (Ice Lake SP, Sapphire Rapids) and
//!   SpecI2M parameter sets,
//! * [`cachesim`] — the cache-hierarchy / memory-traffic simulator with the
//!   SpecI2M write-allocate-evasion engine,
//! * [`simpi`] — the in-process message-passing substrate,
//! * [`stencil`] — loop descriptors, layer conditions and code-balance
//!   bounds (Table I),
//! * [`core`] — traffic, scaling, MPI and optimization models (the paper's
//!   analyses),
//! * [`leaf`] — the CloverLeaf hydrodynamics mini-app port,
//! * [`perfmon`] — region markers and row-sampled loop measurements,
//! * [`ubench`] — the store/copy microbenchmarks,
//! * [`golden`] — typed artifacts, the digitised paper reference data and
//!   the tolerance-aware fidelity diff engine,
//! * [`scenario`] — the scenario sweep engine (machine × grid × ranks ×
//!   stage plans with a parallel runner),
//! * [`service`] — sweep-as-a-service: the persistent memo store and the
//!   `figures serve` query daemon.
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! paper-vs-reproduction comparison of every table and figure.

pub use clover_cachesim as cachesim;
pub use clover_core as core;
pub use clover_golden as golden;
pub use clover_leaf as leaf;
pub use clover_machine as machine;
pub use clover_perfmon as perfmon;
pub use clover_scenario as scenario;
pub use clover_service as service;
pub use clover_simpi as simpi;
pub use clover_stencil as stencil;
pub use clover_ubench as ubench;
